#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace idlered::stats {
namespace {

TEST(HistogramTest, BinningBoundaries) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0 (inclusive lower)
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderOverflowCounted) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ProbabilityIncludesTails) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.probability(0), 0.5);
}

TEST(HistogramTest, DensityIsProbabilityOverWidth) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.density(0), 1.0 / 2.0);  // prob 1, width 2
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 3.0);
}

TEST(HistogramTest, AddAll) {
  Histogram h(0.0, 4.0, 4);
  h.add_all({0.5, 1.5, 2.5, 3.5});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(h.count(i), 1u);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, AsciiContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramTest, AsciiShowsTailWhenOverflow) {
  Histogram h(0.0, 2.0, 2);
  h.add(5.0);
  EXPECT_NE(h.ascii().find("tail"), std::string::npos);
}

}  // namespace
}  // namespace idlered::stats
