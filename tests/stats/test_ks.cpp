#include "stats/ks_test.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace idlered::stats {
namespace {

std::vector<double> exponential_sample(double mean, int n,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.exponential(mean));
  return xs;
}

TEST(KsTest, ExponentialSampleAcceptedAgainstTrueCdf) {
  const auto xs = exponential_sample(10.0, 2000, 1);
  const auto r = ks_test(xs, [](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / 10.0);
  });
  EXPECT_FALSE(r.reject_at(0.01));
  EXPECT_LT(r.statistic, 0.05);
}

TEST(KsTest, ShiftedCdfRejected) {
  const auto xs = exponential_sample(10.0, 2000, 2);
  const auto r = ks_test(xs, [](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / 30.0);  // wrong mean
  });
  EXPECT_TRUE(r.reject_at(0.01));
}

TEST(KsTest, ExponentialSelfTestAccepts) {
  const auto xs = exponential_sample(5.0, 1000, 3);
  EXPECT_FALSE(ks_test_exponential(xs).reject_at(0.01));
}

TEST(KsTest, HeavyTailedSampleRejectedAsExponential) {
  // Lognormal with sigma=1.5 has a far heavier tail than any exponential —
  // the paper's Figure 3 observation.
  util::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.lognormal(2.0, 1.5));
  EXPECT_TRUE(ks_test_exponential(xs).reject_at(0.001));
}

TEST(KsTest, EmptySampleThrows) {
  EXPECT_THROW(ks_test({}, [](double) { return 0.5; }), std::invalid_argument);
}

TEST(KsTwoSampleTest, SameDistributionAccepted) {
  const auto a = exponential_sample(7.0, 1500, 5);
  const auto b = exponential_sample(7.0, 1500, 6);
  EXPECT_FALSE(ks_test_two_sample(a, b).reject_at(0.01));
}

TEST(KsTwoSampleTest, DifferentDistributionsRejected) {
  const auto a = exponential_sample(7.0, 1500, 7);
  const auto b = exponential_sample(20.0, 1500, 8);
  EXPECT_TRUE(ks_test_two_sample(a, b).reject_at(0.001));
}

TEST(KsTwoSampleTest, StatisticIsOneForDisjointSupports) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 11.0, 12.0};
  EXPECT_NEAR(ks_test_two_sample(a, b).statistic, 1.0, 1e-12);
}

TEST(KolmogorovPValueTest, MonotoneDecreasingInStatistic) {
  const double p1 = kolmogorov_p_value(0.01, 1000.0);
  const double p2 = kolmogorov_p_value(0.05, 1000.0);
  const double p3 = kolmogorov_p_value(0.10, 1000.0);
  EXPECT_GT(p1, p2);
  EXPECT_GT(p2, p3);
}

TEST(KolmogorovPValueTest, BoundsRespected) {
  EXPECT_DOUBLE_EQ(kolmogorov_p_value(0.0, 100.0), 1.0);
  EXPECT_LE(kolmogorov_p_value(0.9, 10000.0), 1e-6);
}

}  // namespace
}  // namespace idlered::stats
