#include "stats/ecdf.h"

#include <gtest/gtest.h>

namespace idlered::stats {
namespace {

TEST(EcdfTest, StepValues) {
  Ecdf f({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(EcdfTest, HandlesDuplicates) {
  Ecdf f({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f(1.9), 0.0);
}

TEST(EcdfTest, EmptyThrows) {
  EXPECT_THROW(Ecdf({}), std::invalid_argument);
}

TEST(EcdfTest, InverseIsGeneralizedInverse) {
  Ecdf f({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(f.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.26), 20.0);
  EXPECT_DOUBLE_EQ(f.inverse(1.0), 40.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.01), 10.0);
}

TEST(EcdfTest, InverseRejectsOutOfRange) {
  Ecdf f({1.0});
  EXPECT_THROW(f.inverse(0.0), std::invalid_argument);
  EXPECT_THROW(f.inverse(1.5), std::invalid_argument);
}

TEST(EcdfTest, InverseRoundTripProperty) {
  Ecdf f({3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0});
  // F(F^{-1}(p)) >= p for every p in (0, 1].
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    EXPECT_GE(f(f.inverse(p)), p - 1e-12);
  }
}

TEST(EcdfTest, MinMaxSorted) {
  Ecdf f({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(f.min(), 1.0);
  EXPECT_DOUBLE_EQ(f.max(), 5.0);
  EXPECT_EQ(f.size(), 3u);
}

}  // namespace
}  // namespace idlered::stats
