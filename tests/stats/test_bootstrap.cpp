#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/random.h"

namespace idlered::stats {
namespace {

std::vector<double> normal_sample(double mean, double sd, int n,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal(mean, sd));
  return xs;
}

TEST(BootstrapTest, EstimateIsSampleStatistic) {
  const auto xs = normal_sample(10.0, 2.0, 500, 1);
  util::Rng rng(2);
  const auto ci = bootstrap_mean_ci(xs, 500, 0.95, rng);
  EXPECT_DOUBLE_EQ(ci.estimate, mean(xs));
}

TEST(BootstrapTest, IntervalBracketsEstimate) {
  const auto xs = normal_sample(5.0, 1.0, 200, 3);
  util::Rng rng(4);
  const auto ci = bootstrap_mean_ci(xs, 800, 0.95, rng);
  EXPECT_LE(ci.lo, ci.estimate);
  EXPECT_GE(ci.hi, ci.estimate);
  EXPECT_TRUE(ci.contains(ci.estimate));
}

TEST(BootstrapTest, WidthMatchesClassicTheory) {
  // For the mean of n normals, the 95% CI width is ~ 2 * 1.96 * sd/sqrt(n).
  const int n = 400;
  const double sd = 2.0;
  const auto xs = normal_sample(0.0, sd, n, 5);
  util::Rng rng(6);
  const auto ci = bootstrap_mean_ci(xs, 2000, 0.95, rng);
  const double classic = 2.0 * 1.96 * sd / std::sqrt(n);
  EXPECT_NEAR(ci.width(), classic, 0.35 * classic);
}

TEST(BootstrapTest, WidthShrinksWithSampleSize) {
  util::Rng rng(7);
  const auto small = normal_sample(0.0, 1.0, 50, 8);
  const auto large = normal_sample(0.0, 1.0, 5000, 9);
  const auto ci_small = bootstrap_mean_ci(small, 500, 0.95, rng);
  const auto ci_large = bootstrap_mean_ci(large, 500, 0.95, rng);
  EXPECT_LT(ci_large.width(), ci_small.width());
}

TEST(BootstrapTest, HigherConfidenceWiderInterval) {
  const auto xs = normal_sample(0.0, 1.0, 300, 10);
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  const auto ci90 = bootstrap_mean_ci(xs, 1000, 0.90, rng_a);
  const auto ci99 = bootstrap_mean_ci(xs, 1000, 0.99, rng_b);
  EXPECT_LT(ci90.width(), ci99.width());
}

TEST(BootstrapTest, CoverageApproximatelyNominal) {
  // Across many independent samples from a known law, the 90% CI should
  // contain the true mean roughly 90% of the time.
  int covered = 0;
  const int trials = 200;
  util::Rng rng(12);
  for (int i = 0; i < trials; ++i) {
    const auto xs =
        normal_sample(3.0, 1.5, 60, 100u + static_cast<std::uint64_t>(i));
    const auto ci = bootstrap_mean_ci(xs, 300, 0.90, rng);
    if (ci.contains(3.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.80);
  EXPECT_LT(coverage, 0.98);
}

TEST(BootstrapTest, QuantileCi) {
  util::Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.exponential(10.0));
  const auto ci = bootstrap_quantile_ci(xs, 0.5, 500, 0.95, rng);
  // Exponential(10) median = 10 ln 2 ~ 6.93.
  EXPECT_GT(ci.hi, 6.0);
  EXPECT_LT(ci.lo, 8.0);
}

TEST(BootstrapTest, CustomStatistic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  util::Rng rng(14);
  const auto ci = bootstrap_ci(
      xs, [](const std::vector<double>& s) { return max(s); }, 200, 0.9,
      rng);
  EXPECT_DOUBLE_EQ(ci.estimate, 100.0);
  EXPECT_LE(ci.hi, 100.0 + 1e-12);  // the max can't exceed the sample max
}

TEST(BootstrapTest, InvalidInputsThrow) {
  util::Rng rng(15);
  EXPECT_THROW(bootstrap_mean_ci({}, 100, 0.95, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1, 0.95, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 100, 1.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::stats
