#include "util/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace idlered::util {
namespace {

TEST(MathTest, ClampInsideRange) { EXPECT_EQ(clamp(0.5, 0.0, 1.0), 0.5); }
TEST(MathTest, ClampBelow) { EXPECT_EQ(clamp(-3.0, 0.0, 1.0), 0.0); }
TEST(MathTest, ClampAbove) { EXPECT_EQ(clamp(7.0, 0.0, 1.0), 1.0); }

TEST(MathTest, ApproxEqualExact) { EXPECT_TRUE(approx_equal(1.0, 1.0)); }

TEST(MathTest, ApproxEqualWithinRelTol) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
}

TEST(MathTest, ApproxEqualNearZeroUsesAbsTol) {
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_FALSE(approx_equal(0.0, 1e-3));
}

TEST(MathTest, LinspaceEndpointsAndSpacing) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_NEAR(g[1] - g[0], 0.25, 1e-15);
  EXPECT_NEAR(g[3] - g[2], 0.25, 1e-15);
}

TEST(MathTest, LinspaceSinglePoint) {
  const auto g = linspace(3.0, 9.0, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g[0], 3.0);
}

TEST(MathTest, LinspaceRejectsNonPositiveCount) {
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(MathTest, LogspaceEndpoints) {
  const auto g = logspace(1.0, 100.0, 3);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_NEAR(g[0], 1.0, 1e-12);
  EXPECT_NEAR(g[1], 10.0, 1e-12);
  EXPECT_NEAR(g[2], 100.0, 1e-12);
}

TEST(MathTest, LogspaceRejectsNonPositiveEndpoints) {
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, -1.0, 3), std::invalid_argument);
}

TEST(IntegrateTest, Polynomial) {
  // integral_0^2 (3x^2 + 1) dx = 8 + 2 = 10
  const double v =
      integrate([](double x) { return 3.0 * x * x + 1.0; }, 0.0, 2.0);
  EXPECT_NEAR(v, 10.0, 1e-9);
}

TEST(IntegrateTest, Exponential) {
  const double v = integrate([](double x) { return std::exp(x); }, 0.0, 1.0);
  EXPECT_NEAR(v, kE - 1.0, 1e-9);
}

TEST(IntegrateTest, ReversedLimitsNegate) {
  const double fwd = integrate([](double x) { return x; }, 0.0, 3.0);
  const double rev = integrate([](double x) { return x; }, 3.0, 0.0);
  EXPECT_NEAR(fwd, -rev, 1e-12);
}

TEST(IntegrateTest, ZeroWidthIsZero) {
  EXPECT_EQ(integrate([](double x) { return x * x; }, 2.0, 2.0), 0.0);
}

TEST(IntegrateTest, OscillatoryFunction) {
  // integral_0^pi sin(x) dx = 2
  const double v = integrate([](double x) { return std::sin(x); }, 0.0,
                             3.14159265358979323846);
  EXPECT_NEAR(v, 2.0, 1e-8);
}

TEST(IntegrateTest, SimpsonFixedPanelPolynomialExact) {
  // Simpson is exact for cubics.
  const double v = integrate_simpson(
      [](double x) { return x * x * x - x; }, 0.0, 2.0, 4);
  EXPECT_NEAR(v, 4.0 - 2.0, 1e-12);
}

TEST(IntegrateTest, SimpsonRejectsOddPanelCount) {
  EXPECT_THROW(integrate_simpson([](double x) { return x; }, 0.0, 1.0, 3),
               std::invalid_argument);
}

TEST(BisectTest, FindsRootOfCubic) {
  const double r =
      bisect([](double x) { return x * x * x - 8.0; }, 0.0, 10.0);
  EXPECT_NEAR(r, 2.0, 1e-10);
}

TEST(BisectTest, EndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(BisectTest, RejectsSameSignEndpoints) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(GoldenTest, MinimizesParabola) {
  const double m =
      minimize_golden([](double x) { return (x - 1.5) * (x - 1.5); }, 0.0,
                      4.0);
  EXPECT_NEAR(m, 1.5, 1e-7);
}

TEST(GoldenTest, MinimizesSkiRentalBdetCost) {
  // (b + B)(mu/b + q) with B=28, mu=2, q=0.1: minimum at sqrt(mu B / q).
  const double b_star = minimize_golden(
      [](double b) { return (b + 28.0) * (2.0 / b + 0.1); }, 0.1, 28.0);
  EXPECT_NEAR(b_star, std::sqrt(2.0 * 28.0 / 0.1), 1e-5);
}

TEST(ConstantsTest, EulerRatios) {
  EXPECT_NEAR(kE, std::exp(1.0), 1e-15);
  EXPECT_NEAR(kEOverEMinus1, 1.5819767068693265, 1e-12);
}

}  // namespace
}  // namespace idlered::util
