#include "util/table.h"

#include <gtest/gtest.h>

namespace idlered::util {
namespace {

TEST(TableTest, HeaderAndRowsRendered) {
  Table t({"name", "cr"});
  t.add_row({"TOI", "1.23"});
  t.add_row({"DET", "2.00"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("TOI"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, DoubleRowFormatting) {
  Table t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(TableTest, ColumnsAlignedToWidestCell) {
  Table t({"s", "value"});
  t.add_row({"longer-name", "1"});
  const std::string rendered = t.str();
  // Header separator line must be at least as wide as the longest cell.
  EXPECT_NE(rendered.find("-----------"), std::string::npos);
}

TEST(TableTest, RowsCounted) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(BannerTest, ContainsTitle) {
  const std::string b = banner("Figure 4");
  EXPECT_NE(b.find("Figure 4"), std::string::npos);
  EXPECT_NE(b.find("=="), std::string::npos);
}

}  // namespace
}  // namespace idlered::util
