#include "util/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace idlered::util {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 8.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 8.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces appear in 1000 rolls
}

TEST(RngTest, ExponentialMeanApproximately) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(RngTest, NormalMomentsApproximately) {
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(RngTest, ParetoSupportAndTail) {
  Rng rng(9);
  const double scale = 2.0;
  const double shape = 1.5;
  int above4 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(scale, shape);
    ASSERT_GE(x, scale);
    if (x > 4.0) ++above4;
  }
  // P(X > 4) = (2/4)^1.5 ~= 0.3536
  EXPECT_NEAR(static_cast<double>(above4) / n, std::pow(0.5, 1.5), 0.01);
}

TEST(RngTest, PoissonMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.2));
  EXPECT_NEAR(sum / n, 4.2, 0.05);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(100);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  // Correlation of forked streams should be near zero.
  double sum_ab = 0.0;
  double sum_a = 0.0;
  double sum_b = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  EXPECT_NEAR(cov, 0.0, 0.005);
}

TEST(RngTest, ForkWithSameSaltFromSameStateIsReproducible) {
  Rng p1(55);
  Rng p2(55);
  Rng c1 = p1.fork(9);
  Rng c2 = p2.fork(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.uniform(), c2.uniform());
}

TEST(Mix64Test, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace idlered::util
