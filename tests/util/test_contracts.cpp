#include "util/contracts.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/analytic.h"
#include "core/crand.h"
#include "core/estimator.h"
#include "core/proposed.h"
#include "core/solver_lp.h"
#include "dist/distribution.h"
#include "dist/parametric.h"
#include "util/random.h"

namespace idlered {
namespace {

namespace contracts = util::contracts;

constexpr double kB = 28.0;

dist::ShortStopStats make_stats(double mu, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu;
  s.q_b_plus = q;
  return s;
}

// ---------------------------------------------------------------------------
// Macro behavior per mode.

TEST(ContractModeTest, DefaultModeIsThrow) {
  // tools/check.sh step 5 runs the suite with IDLERED_CONTRACT_MODE=throw
  // (the CMake default); this test pins that assumption.
  EXPECT_EQ(contracts::mode(), contracts::Mode::kThrow);
}

TEST(ContractModeTest, ThrowModeRaisesContractViolation) {
  contracts::ScopedMode scope(contracts::Mode::kThrow);
  bool reached_after = false;
  EXPECT_THROW(
      {
        IDLERED_EXPECTS(1 + 1 == 3, "arithmetic is broken");
        reached_after = true;
      },
      contracts::ContractViolation);
  EXPECT_FALSE(reached_after);
}

TEST(ContractModeTest, ViolationIsCatchableAsInvalidArgument) {
  // The contract layer replaced many `throw std::invalid_argument` sites;
  // existing handlers must keep working.
  contracts::ScopedMode scope(contracts::Mode::kThrow);
  EXPECT_THROW(IDLERED_EXPECTS(false, "boundary violated"),
               std::invalid_argument);
  EXPECT_THROW(IDLERED_ENSURES(false, "result out of range"),
               std::logic_error);
}

TEST(ContractModeTest, ViolationCarriesLocationAndKind) {
  contracts::ScopedMode scope(contracts::Mode::kThrow);
  try {
    IDLERED_ASSERT_INVARIANT(false, "pdf does not normalize");
    FAIL() << "contract did not fire";
  } catch (const contracts::ContractViolation& e) {
    EXPECT_EQ(e.kind(), "invariant");
    EXPECT_EQ(e.condition(), "false");
    EXPECT_NE(e.file().find("test_contracts.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    const std::string what = e.what();
    EXPECT_NE(what.find("pdf does not normalize"), std::string::npos);
    EXPECT_NE(what.find("invariant"), std::string::npos);
  }
}

TEST(ContractModeTest, PassingConditionIsSilentInEveryMode) {
  for (auto m : {contracts::Mode::kThrow, contracts::Mode::kAbort,
                 contracts::Mode::kOff}) {
    contracts::ScopedMode scope(m);
    EXPECT_NO_THROW(IDLERED_EXPECTS(2 > 1, "never fires"));
    EXPECT_NO_THROW(IDLERED_ENSURES(true, "never fires"));
    EXPECT_NO_THROW(IDLERED_ASSERT_INVARIANT(true, "never fires"));
  }
}

TEST(ContractModeTest, OffModeSkipsCheckAndConditionEvaluation) {
  contracts::ScopedMode scope(contracts::Mode::kOff);
  int evaluations = 0;
  auto failing_probe = [&evaluations] {
    ++evaluations;
    return false;
  };
  EXPECT_NO_THROW(IDLERED_EXPECTS(failing_probe(), "disabled"));
  // Off mode short-circuits before the condition: contracts must be free
  // when disabled, so conditions are required to be side-effect free.
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractModeDeathTest, AbortModeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        contracts::set_mode(contracts::Mode::kAbort);
        IDLERED_EXPECTS(false, "fatal boundary violation");
      },
      "contract violation.*fatal boundary violation");
}

TEST(ContractModeTest, ScopedModeRestores) {
  const contracts::Mode before = contracts::mode();
  {
    contracts::ScopedMode scope(contracts::Mode::kOff);
    EXPECT_EQ(contracts::mode(), contracts::Mode::kOff);
  }
  EXPECT_EQ(contracts::mode(), before);
}

// ---------------------------------------------------------------------------
// Regression: infeasible b-DET inputs are rejected at the boundary instead
// of producing NaN strategies (the "bad CR number three PRs later" bug).

TEST(BdetFeasibilityContractTest, OutOfRangeQRejectedByProposed) {
  for (double q : {-0.2, 1.5, std::nan("")}) {
    const auto s = make_stats(5.0, q);
    EXPECT_THROW(core::ProposedPolicy(kB, s), std::invalid_argument)
        << "q_B_plus = " << q;
  }
}

TEST(BdetFeasibilityContractTest, OutOfRangeMuRejectedByProposed) {
  // mu > B(1-q) means the short-stop mass exceeds its support: no
  // distribution exists with these statistics.
  for (double mu : {-1.0, kB + 1.0, std::nan("")}) {
    const auto s = make_stats(mu, 0.0);
    EXPECT_THROW(core::ProposedPolicy(kB, s), std::invalid_argument)
        << "mu_B_minus = " << mu;
  }
}

TEST(BdetFeasibilityContractTest, ChoiceNeverCarriesNaN) {
  // Sweep the feasible region, including the eq. (36) boundary where the
  // b-DET vertex flips in and out: every selection must carry finite,
  // non-negative guarantees and (when b-DET wins) an interior b*.
  for (double q = 0.05; q < 1.0; q += 0.05) {
    for (double frac = 0.05; frac < 1.0; frac += 0.05) {
      const double mu = frac * kB * (1.0 - q);
      const auto choice = core::choose_strategy(make_stats(mu, q), kB);
      EXPECT_TRUE(std::isfinite(choice.expected_cost));
      EXPECT_GE(choice.expected_cost, 0.0);
      EXPECT_TRUE(std::isfinite(choice.cr));
      EXPECT_GE(choice.cr, 1.0 - 1e-9);
      if (choice.strategy == core::Strategy::kBDet) {
        EXPECT_TRUE(std::isfinite(choice.b));
        EXPECT_GT(choice.b, 0.0);
        EXPECT_LT(choice.b, kB);
      }
    }
  }
}

TEST(BdetFeasibilityContractTest, InfeasibleEq36NeverSelectsBdet) {
  // mu/B >= (1-q)^2/q violates eq. (36): the b-DET vertex must report an
  // infinite worst case and never win the selection.
  const double q = 0.5;
  const double mu = kB * (1.0 - q) * (1.0 - q) / q;  // boundary exactly
  const auto s = make_stats(std::min(mu, kB * (1.0 - q)), q);
  EXPECT_FALSE(core::b_det_feasible(s, kB));
  EXPECT_TRUE(std::isinf(core::worst_case_cost_b_det(s, kB)));
  const auto choice = core::choose_strategy(s, kB);
  EXPECT_NE(choice.strategy, core::Strategy::kBDet);
}

TEST(EstimatorBoundaryContractTest, StatsAlwaysInRange) {
  core::StatsEstimator est(kB);
  util::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    est.observe(rng.exponential(20.0));
    const auto s = est.stats();
    EXPECT_GE(s.q_b_plus, 0.0);
    EXPECT_LE(s.q_b_plus, 1.0);
    EXPECT_GE(s.mu_b_minus, 0.0);
    EXPECT_LE(s.mu_b_minus, kB);
  }
}

TEST(ShortStopStatsContractTest, FromSampleRejectsHostileEntries) {
  for (double v : {std::nan(""), -1.0,
                   std::numeric_limits<double>::infinity()}) {
    EXPECT_THROW(dist::ShortStopStats::from_sample({10.0, v}, kB),
                 std::invalid_argument)
        << "entry = " << v;
  }
}

TEST(ShortStopStatsContractTest, FromDistributionStaysInRange) {
  const dist::Exponential exp_law(20.0);
  const auto s = dist::ShortStopStats::from_distribution(exp_law, kB);
  EXPECT_GE(s.q_b_plus, 0.0);
  EXPECT_LE(s.q_b_plus, 1.0);
  EXPECT_GE(s.mu_b_minus, 0.0);
  EXPECT_LE(s.mu_b_minus, kB);
}

// ---------------------------------------------------------------------------
// LP vertex-cost contracts (eq. 32/33).

TEST(LpContractTest, CoefficientsAbsoluteCostsNonNegative) {
  const auto s = make_stats(5.0, 0.3);
  const auto k = core::lp_coefficients(s, kB);
  EXPECT_GE(k.constant, 0.0);
  EXPECT_GE(k.k_alpha + k.constant, 0.0);
  EXPECT_GE(k.k_beta + k.constant, 0.0);
  EXPECT_GE(k.k_gamma + k.constant, 0.0);
}

TEST(LpContractTest, SolutionIsSubProbabilityVector) {
  for (double q : {0.05, 0.3, 0.7}) {
    const auto s = make_stats(0.2 * kB * (1.0 - q), q);
    const auto sol = core::solve_constrained_lp(s, kB);
    EXPECT_GE(sol.alpha, -1e-9);
    EXPECT_GE(sol.beta, -1e-9);
    EXPECT_GE(sol.gamma, -1e-9);
    EXPECT_LE(sol.alpha + sol.beta + sol.gamma, 1.0 + 1e-9);
    EXPECT_TRUE(std::isfinite(sol.expected_cost));
    EXPECT_GE(sol.expected_cost, 0.0);
  }
}

// ---------------------------------------------------------------------------
// c-Rand pdf normalization contract.

TEST(CRandContractTest, RejectsOutOfSupportTruncation) {
  EXPECT_THROW(core::CRandPolicy(kB, 0.0), std::invalid_argument);
  EXPECT_THROW(core::CRandPolicy(kB, -3.0), std::invalid_argument);
  EXPECT_THROW(core::CRandPolicy(kB, kB + 1.0), std::invalid_argument);
}

TEST(CRandContractTest, NormalizedAcrossSupportSweep) {
  for (double c : {0.5, 7.0, 14.0, kB}) {
    const core::CRandPolicy p(kB, c);
    EXPECT_NEAR(p.cdf(c), 1.0, 1e-12);
    EXPECT_TRUE(std::isfinite(p.kappa()));
    EXPECT_GE(p.kappa(), 1.0);
  }
}

}  // namespace
}  // namespace idlered
