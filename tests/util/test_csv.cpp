#include "util/csv.h"

#include <gtest/gtest.h>

namespace idlered::util {
namespace {

TEST(CsvParseTest, SimpleRows) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n4,5,6\n", /*has_header=*/true);
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(CsvParseTest, NoHeaderMode) {
  const auto doc = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_TRUE(doc.header.empty());
  ASSERT_EQ(doc.rows.size(), 2u);
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  const auto doc = parse_csv("\"x,y\",z\n", false);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[0][1], "z");
}

TEST(CsvParseTest, EscapedQuote) {
  const auto doc = parse_csv("\"he said \"\"hi\"\"\"\n", false);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "he said \"hi\"");
}

TEST(CsvParseTest, QuotedNewline) {
  const auto doc = parse_csv("\"line1\nline2\",b\n", false);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, ToleratesCrLf) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvParseTest, MissingFinalNewline) {
  const auto doc = parse_csv("a,b\n1,2", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(CsvParseTest, ColumnLookup) {
  const auto doc = parse_csv("id,area,stop\n", true);
  EXPECT_EQ(doc.column("area"), 1);
  EXPECT_EQ(doc.column("missing"), -1);
}

TEST(CsvEscapeTest, PlainFieldUntouched) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(CsvEscapeTest, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscapeTest, QuoteDoubled) {
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
}

TEST(CsvWriterTest, RoundTrip) {
  CsvWriter w;
  w.add_row(CsvRow{"id", "value"});
  w.add_row(CsvRow{"x,1", "he said \"hi\""});
  const auto doc = parse_csv(w.str(), true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "x,1");
  EXPECT_EQ(doc.rows[0][1], "he said \"hi\"");
}

TEST(CsvWriterTest, DoubleRowPreservesPrecision) {
  CsvWriter w;
  w.add_row(std::vector<double>{0.1234567890123456, 28.0});
  const auto doc = parse_csv(w.str(), false);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(doc.rows[0][0]), 0.1234567890123456);
  EXPECT_DOUBLE_EQ(std::stod(doc.rows[0][1]), 28.0);
}

TEST(CsvFileTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv", true),
               std::runtime_error);
}

}  // namespace
}  // namespace idlered::util

#include "util/cli.h"

namespace idlered::util {
namespace {

char** make_argv(std::vector<std::string>& storage,
                 std::vector<char*>& ptrs) {
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(ArgsTest, PositionalAndOptions) {
  std::vector<std::string> raw{"prog", "simulate", "--area", "Chicago",
                               "--verbose", "--seed", "42"};
  std::vector<char*> ptrs;
  Args args(static_cast<int>(raw.size()), make_argv(raw, ptrs));
  EXPECT_EQ(args.program(), "prog");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "simulate");
  EXPECT_TRUE(args.has("area"));
  EXPECT_EQ(args.value_or("area", std::string("x")), "Chicago");
  EXPECT_EQ(args.value_or("seed", 0), 42);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.value_or("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.value_or("missing", 2.5), 2.5);
}

TEST(ArgsTest, FlagFollowedByOptionHasNoValue) {
  std::vector<std::string> raw{"prog", "--flag", "--other", "3"};
  std::vector<char*> ptrs;
  Args args(static_cast<int>(raw.size()), make_argv(raw, ptrs));
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.value("flag").has_value());
  EXPECT_EQ(args.value_or("other", 0), 3);
}

TEST(ArgsTest, DoubleValues) {
  std::vector<std::string> raw{"prog", "--break-even", "47.5"};
  std::vector<char*> ptrs;
  Args args(static_cast<int>(raw.size()), make_argv(raw, ptrs));
  EXPECT_DOUBLE_EQ(args.value_or("break-even", 28.0), 47.5);
}

}  // namespace
}  // namespace idlered::util
