// util/bits.h: the audited type-punning and durable-encoding helpers.
// These back the serve WAL/snapshot bit-identity contract, so the tests
// pin exact byte layouts, not just round-trips.
#include "util/bits.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace idlered {
namespace {

TEST(BitCast, RoundTripsDoubleThroughUint64) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.5,
                           60.0,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const auto bits = util::bit_cast<std::uint64_t>(v);
    EXPECT_EQ(util::bit_cast<std::uint64_t>(util::bit_cast<double>(bits)),
              bits);
  }
}

TEST(BitCast, DistinguishesSignedZeroAndNanPayloads) {
  EXPECT_NE(util::bit_cast<std::uint64_t>(0.0),
            util::bit_cast<std::uint64_t>(-0.0));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto bits = util::bit_cast<std::uint64_t>(nan);
  EXPECT_TRUE(std::isnan(util::bit_cast<double>(bits)));
  EXPECT_EQ(util::bit_cast<std::uint64_t>(util::bit_cast<double>(bits)), bits);
}

TEST(LittleEndian, StoreLe64WritesExactByteOrder) {
  unsigned char buf[8] = {};
  util::store_le64(buf, 0x0123456789abcdefULL);
  const unsigned char want[8] = {0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23,
                                 0x01};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(buf[i], want[i]) << "byte " << i;
  EXPECT_EQ(util::load_le64(buf), 0x0123456789abcdefULL);
}

TEST(LittleEndian, StoreLe32WritesExactByteOrder) {
  unsigned char buf[4] = {};
  util::store_le32(buf, 0xdeadbeefU);
  EXPECT_EQ(buf[0], 0xef);
  EXPECT_EQ(buf[1], 0xbe);
  EXPECT_EQ(buf[2], 0xad);
  EXPECT_EQ(buf[3], 0xde);
  EXPECT_EQ(util::load_le32(buf), 0xdeadbeefU);
}

TEST(LittleEndian, RoundTripIsIdentityOnEdgeValues) {
  unsigned char buf[8] = {};
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
        std::uint64_t{1} << 63}) {
    util::store_le64(buf, v);
    EXPECT_EQ(util::load_le64(buf), v);
  }
}

TEST(Fnv1a, MatchesKnownVectors) {
  // Offset basis and the standard published FNV-1a test vectors.
  EXPECT_EQ(util::fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(util::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, TornTailChangesChecksum) {
  const std::string record = "e 7 000000000000002a 3 ...";
  EXPECT_NE(util::fnv1a64(record),
            util::fnv1a64(record.substr(0, record.size() - 1)));
}

TEST(Hex64, FixedWidthLowercase) {
  EXPECT_EQ(util::to_hex64(0), "0000000000000000");
  EXPECT_EQ(util::to_hex64(0x2aULL), "000000000000002a");
  EXPECT_EQ(util::to_hex64(~std::uint64_t{0}), "ffffffffffffffff");
}

TEST(Hex64, ParseAcceptsExactlyWhatToHexEmits) {
  std::uint64_t v = 0;
  EXPECT_TRUE(util::parse_hex64("000000000000002a", v));
  EXPECT_EQ(v, 0x2aULL);
  EXPECT_TRUE(util::parse_hex64("f", v));
  EXPECT_EQ(v, 0xfULL);
}

TEST(Hex64, ParseRejectsMalformedInput) {
  std::uint64_t v = 0x1234;
  EXPECT_FALSE(util::parse_hex64("", v));
  EXPECT_FALSE(util::parse_hex64("0000000000000000ff", v));  // 18 chars
  EXPECT_FALSE(util::parse_hex64("00000000000000ZZ", v));
  EXPECT_FALSE(util::parse_hex64("0xff", v));
  EXPECT_FALSE(util::parse_hex64("ABCD", v));  // uppercase is rejected
  EXPECT_FALSE(util::parse_hex64("-1", v));
  EXPECT_EQ(v, 0x1234ULL) << "failed parse must not touch out";
}

TEST(DoubleBits, ExactRoundTripIncludingNonFinite) {
  const double values[] = {0.0, -0.0, 60.0, 1.0 / 3.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (const double v : values) {
    const std::string hex = util::encode_double_bits(v);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(util::bit_cast<std::uint64_t>(util::decode_double_bits(hex)),
              util::bit_cast<std::uint64_t>(v));
  }
}

TEST(DoubleBits, DecodeThrowsOnWrongWidthOrGarbage) {
  EXPECT_THROW(util::decode_double_bits(""), std::runtime_error);
  EXPECT_THROW(util::decode_double_bits("2a"), std::runtime_error);
  EXPECT_THROW(util::decode_double_bits("zzzzzzzzzzzzzzzz"),
               std::runtime_error);
  EXPECT_THROW(util::decode_double_bits("00000000000000000"),
               std::runtime_error);
}

}  // namespace
}  // namespace idlered
