#include "dist/adaptors.h"

#include <memory>

#include <gtest/gtest.h>

#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::dist {
namespace {

TEST(ScaledTest, MeanScales) {
  Scaled d(std::make_shared<Exponential>(10.0), 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 30.0);
}

TEST(ScaledTest, WithMeanHitsTarget) {
  const auto d =
      Scaled::with_mean(std::make_shared<Exponential>(10.0), 55.0);
  EXPECT_NEAR(d.mean(), 55.0, 1e-12);
  EXPECT_NEAR(d.scale(), 5.5, 1e-12);
}

TEST(ScaledTest, CdfConsistentWithBase) {
  auto base = std::make_shared<Exponential>(10.0);
  Scaled d(base, 2.0);
  EXPECT_NEAR(d.cdf(20.0), base->cdf(10.0), 1e-12);
}

TEST(ScaledTest, ScaledExponentialIsExponential) {
  // Scaling an exponential by s gives an exponential with mean s*m —
  // the cleanest invariant for the adaptor.
  Scaled d(std::make_shared<Exponential>(10.0), 2.0);
  Exponential direct(20.0);
  for (double y : {1.0, 10.0, 50.0}) {
    EXPECT_NEAR(d.pdf(y), direct.pdf(y), 1e-12);
    EXPECT_NEAR(d.cdf(y), direct.cdf(y), 1e-12);
    EXPECT_NEAR(d.partial_expectation(y), direct.partial_expectation(y),
                1e-12);
    EXPECT_NEAR(d.tail_probability(y), direct.tail_probability(y), 1e-12);
  }
}

TEST(ScaledTest, SamplingScales) {
  auto base = std::make_shared<Uniform>(0.0, 1.0);
  Scaled d(base, 10.0);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 10.0);
  }
}

TEST(ScaledTest, RejectsInvalid) {
  EXPECT_THROW(Scaled(nullptr, 2.0), std::invalid_argument);
  EXPECT_THROW(Scaled(std::make_shared<Exponential>(1.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      Scaled::with_mean(std::make_shared<Pareto>(1.0, 0.9), 10.0),
      std::invalid_argument);  // infinite base mean cannot be rescaled
}

TEST(TruncatedTest, SupportRespected) {
  Truncated d(std::make_shared<Exponential>(10.0), 2.0, 8.0);
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 8.0);
  }
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(8.0), 1.0);
}

TEST(TruncatedTest, DensityRenormalized) {
  auto base = std::make_shared<Exponential>(10.0);
  Truncated d(base, 2.0, 8.0);
  const double mass = base->cdf(8.0) - base->cdf(2.0);
  EXPECT_NEAR(d.pdf(5.0), base->pdf(5.0) / mass, 1e-12);
}

TEST(TruncatedTest, MeanInsideSupport) {
  Truncated d(std::make_shared<Exponential>(10.0), 2.0, 8.0);
  const double m = d.mean();
  EXPECT_GT(m, 2.0);
  EXPECT_LT(m, 8.0);
}

TEST(TruncatedTest, RejectsEmptyMass) {
  // Uniform[0,1] has no mass in [5, 6].
  EXPECT_THROW(Truncated(std::make_shared<Uniform>(0.0, 1.0), 5.0, 6.0),
               std::invalid_argument);
}

TEST(PointMassTest, AllMassAtValue) {
  PointMass d(7.0);
  EXPECT_DOUBLE_EQ(d.cdf(6.9), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(7.0), 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 7.0);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 7.0);
}

TEST(PointMassTest, ShortStopStatsSemantics) {
  PointMass d(7.0);
  // As a "short stop" w.r.t. B = 10: contributes its full value to mu.
  EXPECT_DOUBLE_EQ(d.partial_expectation(10.0), 7.0);
  EXPECT_DOUBLE_EQ(d.tail_probability(10.0), 0.0);
  // As a "long stop" w.r.t. B = 5.
  EXPECT_DOUBLE_EQ(d.partial_expectation(5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.tail_probability(5.0), 1.0);
}

TEST(PointMassTest, RejectsNegative) {
  EXPECT_THROW(PointMass(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::dist
