#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "dist/adaptors.h"
#include "dist/empirical.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "util/math.h"

namespace idlered::dist {
namespace {

TEST(QuantileTest, ExponentialClosedForm) {
  Exponential d(10.0);
  EXPECT_NEAR(d.quantile(0.5), 10.0 * std::log(2.0), 1e-12);
  EXPECT_NEAR(d.cdf(d.quantile(0.9)), 0.9, 1e-12);
}

TEST(QuantileTest, UniformClosedForm) {
  Uniform d(5.0, 25.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 15.0);
}

TEST(QuantileTest, ParetoClosedForm) {
  Pareto d(2.0, 1.5);
  EXPECT_NEAR(d.cdf(d.quantile(0.75)), 0.75, 1e-12);
  EXPECT_GT(d.quantile(0.99), d.quantile(0.5));
}

TEST(QuantileTest, WeibullClosedForm) {
  Weibull d(2.0, 10.0);
  EXPECT_NEAR(d.cdf(d.quantile(0.3)), 0.3, 1e-12);
}

TEST(QuantileTest, LogNormalViaDefaultBisection) {
  LogNormal d(2.5, 0.8);
  // Median of a lognormal is exp(mu).
  EXPECT_NEAR(d.quantile(0.5), std::exp(2.5), 1e-6);
  EXPECT_NEAR(d.cdf(d.quantile(0.9)), 0.9, 1e-9);
}

TEST(QuantileTest, MixtureViaDefaultBisection) {
  Mixture m({{0.5, std::make_shared<Exponential>(5.0)},
             {0.5, std::make_shared<Exponential>(50.0)}});
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(QuantileTest, ScaledDelegates) {
  Scaled d(std::make_shared<Exponential>(10.0), 3.0);
  Exponential direct(30.0);
  EXPECT_NEAR(d.quantile(0.7), direct.quantile(0.7), 1e-12);
}

TEST(QuantileTest, EmpiricalUsesEcdfInverse) {
  Empirical d({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.26), 20.0);
}

TEST(QuantileTest, PointMassConstant) {
  PointMass d(7.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.01), 7.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 7.0);
}

TEST(QuantileTest, MonotoneInP) {
  Weibull d(0.8, 20.0);
  double prev = 0.0;
  for (double p : util::linspace(0.05, 0.95, 19)) {
    const double q = d.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(QuantileTest, RoundTripWithSampling) {
  // Quantile of the sampled ECDF matches the law's quantile.
  Exponential d(12.0);
  util::Rng rng(123);
  Empirical emp(d.sample_many(rng, 100000));
  for (double p : {0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(emp.quantile(p), d.quantile(p), 0.05 * d.quantile(p) + 0.1)
        << "p=" << p;
  }
}

TEST(QuantileTest, OutOfRangeThrows) {
  Exponential d(10.0);
  EXPECT_THROW(d.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(d.quantile(1.0), std::invalid_argument);
  Uniform u(0.0, 1.0);
  EXPECT_THROW(u.quantile(-0.5), std::invalid_argument);
  PointMass pm(1.0);
  EXPECT_THROW(pm.quantile(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::dist
