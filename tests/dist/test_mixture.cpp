#include "dist/mixture.h"

#include <memory>

#include <gtest/gtest.h>

#include "dist/parametric.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::dist {
namespace {

Mixture body_tail_mixture() {
  // The NREL-like shape from DESIGN.md: lognormal body + Pareto tail.
  std::vector<Mixture::Component> comps;
  comps.push_back({0.78, std::make_shared<LogNormal>(
                             LogNormal::from_mean_median(25.0, 15.0))});
  comps.push_back({0.22, std::make_shared<Pareto>(60.0, 1.6)});
  return Mixture(std::move(comps));
}

TEST(MixtureTest, WeightsNormalized) {
  std::vector<Mixture::Component> comps;
  comps.push_back({2.0, std::make_shared<Exponential>(5.0)});
  comps.push_back({6.0, std::make_shared<Exponential>(10.0)});
  Mixture m(std::move(comps));
  EXPECT_DOUBLE_EQ(m.components()[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(m.components()[1].weight, 0.75);
}

TEST(MixtureTest, MeanIsWeightedAverage) {
  std::vector<Mixture::Component> comps;
  comps.push_back({0.5, std::make_shared<Exponential>(4.0)});
  comps.push_back({0.5, std::make_shared<Exponential>(8.0)});
  Mixture m(std::move(comps));
  EXPECT_DOUBLE_EQ(m.mean(), 6.0);
}

TEST(MixtureTest, CdfIsWeightedSum) {
  const Mixture m = body_tail_mixture();
  const double y = 30.0;
  const LogNormal body = LogNormal::from_mean_median(25.0, 15.0);
  const Pareto tail(60.0, 1.6);
  EXPECT_NEAR(m.cdf(y), 0.78 * body.cdf(y) + 0.22 * tail.cdf(y), 1e-12);
}

TEST(MixtureTest, PartialStatsAreWeightedSums) {
  const Mixture m = body_tail_mixture();
  const LogNormal body = LogNormal::from_mean_median(25.0, 15.0);
  const Pareto tail(60.0, 1.6);
  const double b = 28.0;
  EXPECT_NEAR(m.partial_expectation(b),
              0.78 * body.partial_expectation(b) +
                  0.22 * tail.partial_expectation(b),
              1e-9);
  EXPECT_NEAR(m.tail_probability(b),
              0.78 * body.tail_probability(b) + 0.22 * tail.tail_probability(b),
              1e-12);
}

TEST(MixtureTest, PdfIntegratesToOne) {
  const Mixture m = body_tail_mixture();
  // Integrate far into the tail and add the analytic remainder.
  const double upto = 100000.0;
  const double integral =
      util::integrate([&m](double y) { return m.pdf(y); }, 1e-6, upto, 1e-9);
  EXPECT_NEAR(integral + m.tail_probability(upto), 1.0, 1e-3);
}

TEST(MixtureTest, SamplingMatchesComponentWeights) {
  const Mixture m = body_tail_mixture();
  util::Rng rng(77);
  const auto xs = m.sample_many(rng, 100000);
  std::size_t above = 0;
  for (double x : xs) {
    if (x >= 60.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / static_cast<double>(xs.size()),
              m.tail_probability(60.0), 0.01);
}

TEST(MixtureTest, HeavyTailSampleExceedsBody) {
  const Mixture m = body_tail_mixture();
  util::Rng rng(78);
  double max_seen = 0.0;
  for (double x : m.sample_many(rng, 50000)) max_seen = std::max(max_seen, x);
  EXPECT_GT(max_seen, 500.0);  // Pareto(60, 1.6) tail reaches far out
}

TEST(MixtureTest, RejectsEmptyAndInvalid) {
  EXPECT_THROW(Mixture({}), std::invalid_argument);
  std::vector<Mixture::Component> null_comp;
  null_comp.push_back({1.0, nullptr});
  EXPECT_THROW(Mixture(std::move(null_comp)), std::invalid_argument);
  std::vector<Mixture::Component> neg;
  neg.push_back({-1.0, std::make_shared<Exponential>(1.0)});
  EXPECT_THROW(Mixture(std::move(neg)), std::invalid_argument);
  std::vector<Mixture::Component> zeros;
  zeros.push_back({0.0, std::make_shared<Exponential>(1.0)});
  EXPECT_THROW(Mixture(std::move(zeros)), std::invalid_argument);
}

TEST(MixtureTest, NameListsComponents) {
  const Mixture m = body_tail_mixture();
  EXPECT_NE(m.name().find("LogNormal"), std::string::npos);
  EXPECT_NE(m.name().find("Pareto"), std::string::npos);
}

}  // namespace
}  // namespace idlered::dist
