#include "dist/parametric.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace idlered::dist {
namespace {

// ---------------------------------------------------------------------------
// Family-wide properties, parameterized over every parametric distribution.

struct FamilyCase {
  std::string label;
  std::shared_ptr<const StopLengthDistribution> d;
  double probe_b;  ///< break-even-like probe point for partial stats
  /// Heavy tails (infinite variance) make sample means converge too slowly
  /// for a fixed-n test; those families skip the moment-matching checks.
  bool finite_variance = true;
};

class ParametricFamily : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(ParametricFamily, CdfIsNondecreasingAndBounded) {
  const auto& d = *GetParam().d;
  double prev = 0.0;
  for (double y : util::linspace(0.0, 5.0 * GetParam().probe_b, 200)) {
    const double c = d.cdf(y);
    EXPECT_GE(c, prev - 1e-12) << "at y=" << y;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(ParametricFamily, PdfIntegratesToCdf) {
  const auto& d = *GetParam().d;
  const double b = GetParam().probe_b;
  // Start just above 0: some pdfs are singular or discontinuous at 0.
  const double eps = 1e-6;
  const double integral =
      util::integrate([&d](double y) { return d.pdf(y); }, eps, b, 1e-10);
  EXPECT_NEAR(integral, d.cdf(b) - d.cdf(eps), 2e-4) << GetParam().label;
}

TEST_P(ParametricFamily, PartialExpectationMatchesQuadrature) {
  const auto& d = *GetParam().d;
  const double b = GetParam().probe_b;
  const double eps = 1e-6;
  const double quad =
      util::integrate([&d](double y) { return y * d.pdf(y); }, eps, b, 1e-11);
  EXPECT_NEAR(d.partial_expectation(b), quad, 2e-4 * (1.0 + quad))
      << GetParam().label;
}

TEST_P(ParametricFamily, TailPlusCdfIsOne) {
  const auto& d = *GetParam().d;
  for (double y : {0.5 * GetParam().probe_b, GetParam().probe_b,
                   2.0 * GetParam().probe_b}) {
    EXPECT_NEAR(d.tail_probability(y) + d.cdf(y), 1.0, 1e-9);
  }
}

TEST_P(ParametricFamily, SampleMeanMatchesAnalyticMean) {
  const auto& d = *GetParam().d;
  if (!std::isfinite(d.mean()) || !GetParam().finite_variance)
    GTEST_SKIP() << "tail too heavy for a fixed-n sample-mean check";
  util::Rng rng(12345);
  const auto xs = d.sample_many(rng, 200000);
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double sample_mean = sum / static_cast<double>(xs.size());
  EXPECT_NEAR(sample_mean, d.mean(), 0.05 * d.mean() + 0.01)
      << GetParam().label;
}

TEST_P(ParametricFamily, SampleTailMatchesAnalyticTail) {
  const auto& d = *GetParam().d;
  const double b = GetParam().probe_b;
  util::Rng rng(999);
  const auto xs = d.sample_many(rng, 100000);
  std::size_t above = 0;
  for (double x : xs) {
    if (x >= b) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / static_cast<double>(xs.size()),
              d.tail_probability(b), 0.01)
      << GetParam().label;
}

TEST_P(ParametricFamily, PartialExpectationMonotoneInB) {
  const auto& d = *GetParam().d;
  double prev = 0.0;
  for (double b : util::linspace(0.1, 4.0 * GetParam().probe_b, 40)) {
    const double pe = d.partial_expectation(b);
    EXPECT_GE(pe, prev - 1e-9);
    prev = pe;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ParametricFamily,
    ::testing::Values(
        FamilyCase{"exp", std::make_shared<Exponential>(20.0), 28.0},
        FamilyCase{"uniform", std::make_shared<Uniform>(0.0, 60.0), 28.0},
        FamilyCase{"uniform-offset", std::make_shared<Uniform>(5.0, 40.0),
                   28.0},
        FamilyCase{"lognormal", std::make_shared<LogNormal>(3.0, 0.8), 28.0},
        FamilyCase{"pareto", std::make_shared<Pareto>(10.0, 2.5), 28.0},
        FamilyCase{"pareto-heavy", std::make_shared<Pareto>(5.0, 1.2), 28.0,
                   /*finite_variance=*/false},
        FamilyCase{"weibull", std::make_shared<Weibull>(1.5, 30.0), 28.0},
        FamilyCase{"weibull-decreasing", std::make_shared<Weibull>(0.8, 30.0),
                   28.0},
        FamilyCase{"gamma-erlang", std::make_shared<Gamma>(3.0, 12.0), 28.0},
        FamilyCase{"gamma-decreasing", std::make_shared<Gamma>(0.7, 40.0),
                   28.0}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      std::string n = info.param.label;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Family-specific closed forms.

TEST(ExponentialTest, PartialExpectationClosedForm) {
  Exponential d(10.0);
  // m - (b + m) e^{-b/m} at b = 10: 10 - 20/e.
  EXPECT_NEAR(d.partial_expectation(10.0), 10.0 - 20.0 / util::kE, 1e-12);
}

TEST(ExponentialTest, MeanAndTail) {
  Exponential d(10.0);
  EXPECT_DOUBLE_EQ(d.mean(), 10.0);
  EXPECT_NEAR(d.tail_probability(10.0), std::exp(-1.0), 1e-12);
}

TEST(ExponentialTest, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
}

TEST(UniformTest, PartialExpectationCapsAtHi) {
  Uniform d(0.0, 10.0);
  EXPECT_DOUBLE_EQ(d.partial_expectation(100.0), 5.0);  // full mean
  EXPECT_DOUBLE_EQ(d.partial_expectation(5.0), 25.0 / 20.0);
}

TEST(UniformTest, RejectsBadRange) {
  EXPECT_THROW(Uniform(-1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(Uniform(5.0, 5.0), std::invalid_argument);
}

TEST(LogNormalTest, MeanFormula) {
  LogNormal d(2.0, 0.5);
  EXPECT_NEAR(d.mean(), std::exp(2.0 + 0.125), 1e-12);
}

TEST(LogNormalTest, FromMeanMedianRoundTrip) {
  const auto d = LogNormal::from_mean_median(25.0, 15.0);
  EXPECT_NEAR(d.mean(), 25.0, 1e-9);
  EXPECT_NEAR(d.cdf(15.0), 0.5, 1e-9);  // median preserved
}

TEST(LogNormalTest, FromMeanMedianRejectsInvalid) {
  EXPECT_THROW(LogNormal::from_mean_median(10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogNormal::from_mean_median(10.0, 0.0), std::invalid_argument);
}

TEST(ParetoTest, InfiniteMeanForHeavyShape) {
  Pareto d(1.0, 1.0);
  EXPECT_TRUE(std::isinf(d.mean()));
}

TEST(ParetoTest, MeanFormula) {
  Pareto d(10.0, 3.0);
  EXPECT_NEAR(d.mean(), 15.0, 1e-12);
}

TEST(ParetoTest, PartialExpectationBelowScaleIsZero) {
  Pareto d(10.0, 2.0);
  EXPECT_DOUBLE_EQ(d.partial_expectation(5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.tail_probability(5.0), 1.0);
}

TEST(ParetoTest, UnitShapePartialExpectation) {
  Pareto d(2.0, 1.0);
  // x_m ln(b / x_m) at b = 2e: 2 * 1 = 2... precisely 2*ln(e)=2.
  EXPECT_NEAR(d.partial_expectation(2.0 * util::kE), 2.0, 1e-12);
}

TEST(WeibullTest, MeanViaGamma) {
  Weibull d(2.0, 10.0);
  EXPECT_NEAR(d.mean(), 10.0 * std::tgamma(1.5), 1e-12);
}

TEST(WeibullTest, ShapeOneIsExponential) {
  Weibull w(1.0, 10.0);
  Exponential e(10.0);
  for (double y : {1.0, 5.0, 20.0}) {
    EXPECT_NEAR(w.cdf(y), e.cdf(y), 1e-12);
    EXPECT_NEAR(w.pdf(y), e.pdf(y), 1e-12);
  }
}

TEST(GammaTest, ShapeOneIsExponential) {
  Gamma g(1.0, 15.0);
  Exponential e(15.0);
  for (double y : {0.5, 5.0, 20.0, 60.0}) {
    EXPECT_NEAR(g.pdf(y), e.pdf(y), 1e-12);
    EXPECT_NEAR(g.cdf(y), e.cdf(y), 1e-12);
    EXPECT_NEAR(g.partial_expectation(y), e.partial_expectation(y), 1e-10);
  }
}

TEST(GammaTest, ErlangCdfClosedForm) {
  // Erlang(2, theta): F(y) = 1 - e^{-y/th}(1 + y/th).
  Gamma g(2.0, 10.0);
  for (double y : {1.0, 10.0, 30.0}) {
    const double t = y / 10.0;
    EXPECT_NEAR(g.cdf(y), 1.0 - std::exp(-t) * (1.0 + t), 1e-12);
  }
}

TEST(GammaTest, MeanAndPartialExpectation) {
  Gamma g(3.0, 12.0);
  EXPECT_DOUBLE_EQ(g.mean(), 36.0);
  // Partial expectation converges to the mean.
  EXPECT_NEAR(g.partial_expectation(10000.0), 36.0, 1e-9);
}

TEST(GammaTest, InvalidParametersThrow) {
  EXPECT_THROW(Gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Gamma(1.0, 0.0), std::invalid_argument);
}

TEST(RegularizedGammaTest, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(regularized_lower_gamma(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(k, 0) = 0 and P(k, inf-ish) = 1.
  EXPECT_DOUBLE_EQ(regularized_lower_gamma(2.5, 0.0), 0.0);
  EXPECT_NEAR(regularized_lower_gamma(2.5, 200.0), 1.0, 1e-12);
  // Continuity across the series/continued-fraction switch at x = k + 1.
  EXPECT_NEAR(regularized_lower_gamma(3.0, 3.999999),
              regularized_lower_gamma(3.0, 4.000001), 1e-6);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(NamesTest, HumanReadable) {
  EXPECT_NE(Exponential(5.0).name().find("Exponential"), std::string::npos);
  EXPECT_NE(Pareto(1.0, 2.0).name().find("Pareto"), std::string::npos);
  EXPECT_NE(Weibull(1.0, 2.0).name().find("Weibull"), std::string::npos);
  EXPECT_NE(LogNormal(0.0, 1.0).name().find("LogNormal"), std::string::npos);
  EXPECT_NE(Uniform(0.0, 1.0).name().find("Uniform"), std::string::npos);
}

}  // namespace
}  // namespace idlered::dist
