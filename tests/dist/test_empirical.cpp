#include "dist/empirical.h"

#include <gtest/gtest.h>

#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::dist {
namespace {

TEST(EmpiricalTest, MeanIsSampleMean) {
  Empirical d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
}

TEST(EmpiricalTest, CdfIsEcdf) {
  Empirical d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
}

TEST(EmpiricalTest, PartialExpectationExact) {
  Empirical d({10.0, 20.0, 30.0, 40.0});
  // Stops < 25: 10 and 20; mu_25- = 30/4.
  EXPECT_DOUBLE_EQ(d.partial_expectation(25.0), 7.5);
  // Boundary: stops < 30 are {10, 20}; 30 itself counts as long.
  EXPECT_DOUBLE_EQ(d.partial_expectation(30.0), 7.5);
}

TEST(EmpiricalTest, TailProbabilityCountsAtOrAbove) {
  Empirical d({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(d.tail_probability(30.0), 0.5);  // {30, 40}
  EXPECT_DOUBLE_EQ(d.tail_probability(41.0), 0.0);
  EXPECT_DOUBLE_EQ(d.tail_probability(0.0), 1.0);
}

TEST(EmpiricalTest, SamplesComeFromSample) {
  Empirical d({5.0, 7.0, 11.0});
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x = d.sample(rng);
    EXPECT_TRUE(x == 5.0 || x == 7.0 || x == 11.0);
  }
}

TEST(EmpiricalTest, BootstrapHitsAllValues) {
  Empirical d({5.0, 7.0, 11.0});
  util::Rng rng(4);
  bool saw5 = false;
  bool saw7 = false;
  bool saw11 = false;
  for (int i = 0; i < 500; ++i) {
    const double x = d.sample(rng);
    saw5 |= (x == 5.0);
    saw7 |= (x == 7.0);
    saw11 |= (x == 11.0);
  }
  EXPECT_TRUE(saw5 && saw7 && saw11);
}

TEST(EmpiricalTest, RejectsEmptyAndNegative) {
  EXPECT_THROW(Empirical({}), std::invalid_argument);
  EXPECT_THROW(Empirical({1.0, -2.0}), std::invalid_argument);
}

TEST(EmpiricalTest, ApproximatesSourceDistribution) {
  // An empirical model built from a large exponential sample should agree
  // with the source law on the ski-rental statistics.
  Exponential src(20.0);
  util::Rng rng(42);
  Empirical emp(src.sample_many(rng, 100000));
  const double b = 28.0;
  EXPECT_NEAR(emp.partial_expectation(b), src.partial_expectation(b), 0.2);
  EXPECT_NEAR(emp.tail_probability(b), src.tail_probability(b), 0.01);
  EXPECT_NEAR(emp.mean(), src.mean(), 0.3);
}

TEST(EmpiricalTest, PdfRoughlyMatchesHistogramDensity) {
  Exponential src(10.0);
  util::Rng rng(11);
  Empirical emp(src.sample_many(rng, 50000));
  // The density estimate should be within a factor ~2 of the true pdf in
  // the body of the distribution (coarse Sturges bins).
  const double est = emp.pdf(5.0);
  const double truth = src.pdf(5.0);
  EXPECT_GT(est, truth * 0.3);
  EXPECT_LT(est, truth * 3.0);
}

TEST(EmpiricalTest, NameMentionsSize) {
  Empirical d({1.0, 2.0});
  EXPECT_NE(d.name().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace idlered::dist
