#include <memory>

#include <gtest/gtest.h>

#include "dist/adaptors.h"
#include "dist/distribution.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::dist {
namespace {

TEST(ShortStopStatsTest, FromDistributionExponential) {
  Exponential d(20.0);
  const auto s = ShortStopStats::from_distribution(d, 28.0);
  EXPECT_NEAR(s.mu_b_minus, d.partial_expectation(28.0), 1e-12);
  EXPECT_NEAR(s.q_b_plus, std::exp(-28.0 / 20.0), 1e-12);
  EXPECT_TRUE(s.feasible(28.0));
}

TEST(ShortStopStatsTest, FromSampleExactCounts) {
  const std::vector<double> xs{5.0, 10.0, 30.0, 50.0};
  const auto s = ShortStopStats::from_sample(xs, 28.0);
  EXPECT_DOUBLE_EQ(s.mu_b_minus, 15.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.q_b_plus, 0.5);
}

TEST(ShortStopStatsTest, BoundaryStopCountsAsLong) {
  // y == B is a long stop (eq. 11 integrates short stops over [0, B)).
  const auto s = ShortStopStats::from_sample({28.0}, 28.0);
  EXPECT_DOUBLE_EQ(s.mu_b_minus, 0.0);
  EXPECT_DOUBLE_EQ(s.q_b_plus, 1.0);
}

TEST(ShortStopStatsTest, SampleConvergesToDistribution) {
  Mixture m({{0.7, std::make_shared<LogNormal>(
                       LogNormal::from_mean_median(25.0, 15.0))},
             {0.3, std::make_shared<Pareto>(40.0, 1.8)}});
  util::Rng rng(10);
  const auto xs = m.sample_many(rng, 200000);
  const auto empirical = ShortStopStats::from_sample(xs, 28.0);
  const auto analytic = ShortStopStats::from_distribution(m, 28.0);
  EXPECT_NEAR(empirical.mu_b_minus, analytic.mu_b_minus, 0.15);
  EXPECT_NEAR(empirical.q_b_plus, analytic.q_b_plus, 0.01);
}

TEST(ShortStopStatsTest, FeasibilityBoundary) {
  dist::ShortStopStats s;
  s.q_b_plus = 0.4;
  s.mu_b_minus = 0.6 * 28.0;  // exactly B (1 - q)
  EXPECT_TRUE(s.feasible(28.0));
  s.mu_b_minus = 0.61 * 28.0;  // just above
  EXPECT_FALSE(s.feasible(28.0));
}

TEST(ShortStopStatsTest, InfeasibleProbability) {
  dist::ShortStopStats s;
  s.q_b_plus = 1.5;
  EXPECT_FALSE(s.feasible(28.0));
  s.q_b_plus = -0.1;
  EXPECT_FALSE(s.feasible(28.0));
}

TEST(ShortStopStatsTest, ExpectedOfflineCost) {
  dist::ShortStopStats s;
  s.mu_b_minus = 8.0;
  s.q_b_plus = 0.25;
  EXPECT_DOUBLE_EQ(s.expected_offline_cost(28.0), 8.0 + 7.0);
}

TEST(ShortStopStatsTest, OfflineCostNeverExceedsB) {
  // mu <= B(1-q) implies mu + qB <= B — the paper's observation that TOI's
  // cost B upper-bounds the offline cost.
  for (double q : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    dist::ShortStopStats s;
    s.q_b_plus = q;
    s.mu_b_minus = 28.0 * (1.0 - q);  // max feasible
    EXPECT_LE(s.expected_offline_cost(28.0), 28.0 + 1e-9);
  }
}

TEST(ShortStopStatsTest, EmptySampleThrows) {
  EXPECT_THROW(ShortStopStats::from_sample({}, 28.0), std::invalid_argument);
}

TEST(ShortStopStatsTest, InvalidBreakEvenThrows) {
  Exponential d(10.0);
  EXPECT_THROW(ShortStopStats::from_distribution(d, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ShortStopStats::from_sample({1.0}, -5.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::dist
