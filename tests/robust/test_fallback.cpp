#include "robust/fallback.h"

#include <gtest/gtest.h>

namespace idlered::robust {
namespace {

LadderInputs inputs(HealthState health, bool actuator = false,
                    bool soc_low = false, bool warmed_up = true) {
  LadderInputs in;
  in.health = health;
  in.actuator_suspect = actuator;
  in.soc_low = soc_low;
  in.warmed_up = warmed_up;
  return in;
}

TEST(SelectModeTest, HealthyWarmedUpRunsProposed) {
  EXPECT_EQ(select_mode(inputs(HealthState::kHealthy)),
            ControllerMode::kProposed);
}

TEST(SelectModeTest, HealthyColdRunsNRandFallback) {
  EXPECT_EQ(select_mode(inputs(HealthState::kHealthy, false, false, false)),
            ControllerMode::kNRand);
}

TEST(SelectModeTest, DegradedDropsToDet) {
  EXPECT_EQ(select_mode(inputs(HealthState::kDegraded)),
            ControllerMode::kDet);
}

TEST(SelectModeTest, CriticalDropsToNRand) {
  EXPECT_EQ(select_mode(inputs(HealthState::kCritical)),
            ControllerMode::kNRand);
}

TEST(SelectModeTest, LowSocOverridesEverything) {
  for (auto h : {HealthState::kHealthy, HealthState::kDegraded,
                 HealthState::kCritical}) {
    EXPECT_EQ(select_mode(inputs(h, false, /*soc_low=*/true)),
              ControllerMode::kNev);
  }
}

TEST(SelectModeTest, SuspectActuatorForcesNev) {
  // A failing starter makes every rung that restarts the engine unsafe.
  EXPECT_EQ(select_mode(inputs(HealthState::kHealthy, /*actuator=*/true)),
            ControllerMode::kNev);
  EXPECT_EQ(select_mode(inputs(HealthState::kCritical, /*actuator=*/true)),
            ControllerMode::kNev);
}

TEST(SelectModeTest, LadderIsMonotoneInHealth) {
  // Worse health never selects a rung ABOVE (closer to COA than) the one
  // better health selects.
  const auto rank = [](ControllerMode m) { return static_cast<int>(m); };
  const int healthy = rank(select_mode(inputs(HealthState::kHealthy)));
  const int degraded = rank(select_mode(inputs(HealthState::kDegraded)));
  const int critical = rank(select_mode(inputs(HealthState::kCritical)));
  EXPECT_LE(healthy, degraded);
  EXPECT_LE(degraded, critical);
}

TEST(RobustConfigTest, ValidatePropagatesToSubConfigs) {
  RobustConfig c;
  c.validate();  // defaults are valid
  c.soc_resume_margin = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = RobustConfig{};
  c.guard.max_stop_s = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = RobustConfig{};
  c.health.degraded_exit = 0.9;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ControllerModeTest, NamesMatchPolicyTable) {
  EXPECT_EQ(to_string(ControllerMode::kProposed), "COA");
  EXPECT_EQ(to_string(ControllerMode::kDet), "DET");
  EXPECT_EQ(to_string(ControllerMode::kNRand), "N-Rand");
  EXPECT_EQ(to_string(ControllerMode::kNev), "NEV");
}

}  // namespace
}  // namespace idlered::robust
