// Integration tests for the degraded-mode runtime: the fallback ladder as
// driven by a live AdaptiveController, plus the Config validation added for
// this harness (S2) and the warmup_stops == 0 regression (S6).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "dist/parametric.h"
#include "robust/fault_model.h"
#include "sim/controller.h"
#include "util/random.h"

namespace idlered {
namespace {

using robust::ControllerMode;
using robust::HealthState;
using sim::AdaptiveController;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

AdaptiveController::Config robust_config(std::size_t warmup = 20,
                                         double lambda = 1.0) {
  AdaptiveController::Config c;
  c.break_even = 28.0;
  c.warmup_stops = warmup;
  c.decay_lambda = lambda;
  c.robust.enabled = true;
  return c;
}

robust::SensorReading nan_reading() {
  robust::SensorReading r;
  r.value = kNan;
  r.fault = robust::FaultKind::kNanGlitch;
  return r;
}

// --- S2 / S6: construction-time validation ---------------------------------

TEST(ControllerConfigTest, RejectsZeroWarmupStops) {
  // Regression (S6): warmup_stops == 0 used to let the controller consult
  // StatsEstimator::stats() before any observation -> logic_error at the
  // first stop. Now the configuration is rejected up front.
  AdaptiveController::Config cfg;
  cfg.warmup_stops = 0;
  EXPECT_THROW(AdaptiveController{cfg}, std::invalid_argument);
  cfg.robust.enabled = true;
  EXPECT_THROW(AdaptiveController{cfg}, std::invalid_argument);
}

TEST(ControllerConfigTest, RejectsBadBreakEven) {
  AdaptiveController::Config cfg;
  for (double b : {0.0, -28.0, kNan}) {
    cfg.break_even = b;
    EXPECT_THROW(AdaptiveController{cfg}, std::invalid_argument) << b;
  }
}

TEST(ControllerConfigTest, RejectsBadDecayLambda) {
  AdaptiveController::Config cfg;
  for (double lambda : {0.0, -0.5, 1.5, kNan}) {
    cfg.decay_lambda = lambda;
    EXPECT_THROW(AdaptiveController{cfg}, std::invalid_argument) << lambda;
  }
}

TEST(ControllerConfigTest, RejectsBadRobustThresholds) {
  auto cfg = robust_config();
  cfg.robust.health.degraded_enter = 0.02;  // below degraded_exit
  EXPECT_THROW(AdaptiveController{cfg}, std::invalid_argument);
}

TEST(ControllerConfigTest, RejectsBadBattery) {
  auto cfg = robust_config();
  cfg.battery = sim::BatteryModel{};
  cfg.battery->min_soc = 1.5;
  EXPECT_THROW(AdaptiveController{cfg}, std::invalid_argument);
}

// --- Ladder integration ----------------------------------------------------

TEST(DegradedControllerTest, CleanStreamClimbsToProposed) {
  AdaptiveController ctrl(robust_config(10));
  util::Rng rng(21);
  EXPECT_EQ(ctrl.mode(), ControllerMode::kNRand);  // cold start
  for (int i = 0; i < 50; ++i) ctrl.process_stop_expected(rng.exponential(20.0));
  EXPECT_EQ(ctrl.mode(), ControllerMode::kProposed);
  EXPECT_EQ(ctrl.health(), HealthState::kHealthy);
  EXPECT_EQ(ctrl.current_policy().name(), "COA");
}

TEST(DegradedControllerTest, GlitchFloodWalksDownTheLadder) {
  AdaptiveController ctrl(robust_config(10));
  util::Rng rng(22);
  for (int i = 0; i < 50; ++i) ctrl.process_stop_expected(rng.exponential(20.0));
  ASSERT_EQ(ctrl.mode(), ControllerMode::kProposed);

  // Sensor starts spewing NaN. The controller must step COA -> DET
  // (Degraded) -> N-Rand (Critical), never jumping straight to Critical.
  bool saw_det = false;
  for (int i = 0; i < 40 && ctrl.mode() != ControllerMode::kNRand; ++i) {
    ctrl.process_stop_faulted(rng.exponential(20.0), nan_reading(), rng);
    if (ctrl.mode() == ControllerMode::kDet) saw_det = true;
  }
  EXPECT_TRUE(saw_det);
  EXPECT_EQ(ctrl.mode(), ControllerMode::kNRand);
  EXPECT_EQ(ctrl.health(), HealthState::kCritical);
  EXPECT_TRUE(std::isfinite(ctrl.totals().cr()));
}

TEST(DegradedControllerTest, RecoversToProposedAfterSensorHeals) {
  AdaptiveController ctrl(robust_config(10));
  util::Rng rng(23);
  for (int i = 0; i < 30; ++i) ctrl.process_stop_expected(rng.exponential(20.0));
  for (int i = 0; i < 30; ++i)
    ctrl.process_stop_faulted(rng.exponential(20.0), nan_reading(), rng);
  ASSERT_EQ(ctrl.health(), HealthState::kCritical);
  for (int i = 0; i < 300; ++i)
    ctrl.process_stop_expected(rng.exponential(20.0));
  EXPECT_EQ(ctrl.health(), HealthState::kHealthy);
  EXPECT_EQ(ctrl.mode(), ControllerMode::kProposed);
}

TEST(DegradedControllerTest, RepeatedRestartFailuresForceNev) {
  // Stay in warm-up (N-Rand, thresholds <= B) so every 100 s stop shuts the
  // engine off; each shut-off needs 3 cranks -> the actuator-suspect latch
  // must trip and park the controller on NEV.
  AdaptiveController ctrl(robust_config(100000));
  util::Rng rng(24);
  robust::SensorReading failing;
  failing.restart_attempts = 3;
  failing.fault = robust::FaultKind::kRestartFailure;
  for (int i = 0; i < 30; ++i) {
    failing.value = 100.0;
    ctrl.process_stop_faulted(100.0, failing, rng);
  }
  EXPECT_EQ(ctrl.mode(), ControllerMode::kNev);
  EXPECT_TRUE(ctrl.health_monitor().actuator_suspect());
  // NEV never restarts, so nothing clears the latch: sticky by design.
  for (int i = 0; i < 50; ++i) ctrl.process_stop_sampled(100.0, rng);
  EXPECT_EQ(ctrl.mode(), ControllerMode::kNev);
}

TEST(DegradedControllerTest, LowSocForcesNevAndDrivingRecovers) {
  auto cfg = robust_config(100000);  // stay on N-Rand rungs for determinism
  sim::BatteryModel battery;
  battery.capacity_wh = 10.0;
  battery.accessory_draw_w = 720.0;
  battery.recharge_w = 1200.0;
  battery.restart_pulse_wh = 1.0;
  battery.min_soc = 0.30;
  battery.initial_soc = 0.50;
  cfg.battery = battery;
  AdaptiveController ctrl(cfg);
  util::Rng rng(25);

  // One long engine-off stop drains the tiny pack below the floor.
  ctrl.process_stop_sampled(200.0, rng);
  EXPECT_LT(ctrl.soc(), battery.min_soc);
  EXPECT_EQ(ctrl.mode(), ControllerMode::kNev);

  // NEV keeps the engine on, so further stops cannot drain it deeper.
  const double soc_floor = ctrl.soc();
  ctrl.process_stop_sampled(200.0, rng);
  EXPECT_DOUBLE_EQ(ctrl.soc(), soc_floor);

  // Driving recharges past min_soc + resume margin -> leaves NEV.
  ctrl.note_drive(3600.0);
  EXPECT_GT(ctrl.soc(), battery.min_soc + cfg.robust.soc_resume_margin);
  EXPECT_EQ(ctrl.mode(), ControllerMode::kNRand);
}

TEST(DegradedControllerTest, SparseAnomaliesDoNotFlapTheMode) {
  // 1-in-20 NaN glitches: the anomaly EWMA peaks ~0.078, inside the
  // Healthy band (enter 0.10). The only mode change allowed is the single
  // warm-up N-Rand -> COA climb.
  AdaptiveController ctrl(robust_config(10));
  util::Rng rng(26);
  int transitions = 0;
  ControllerMode last = ctrl.mode();
  for (int i = 0; i < 3000; ++i) {
    const double y = rng.exponential(20.0);
    if (i % 20 == 19) {
      ctrl.process_stop_faulted(y, nan_reading(), rng);
    } else {
      ctrl.process_stop_expected(y);
    }
    if (ctrl.mode() != last) {
      ++transitions;
      last = ctrl.mode();
    }
  }
  EXPECT_EQ(ctrl.health(), HealthState::kHealthy);
  EXPECT_EQ(ctrl.mode(), ControllerMode::kProposed);
  EXPECT_LE(transitions, 1);
}

TEST(DegradedControllerTest, GuardedBoundedWhereUnguardedThrows) {
  // The acceptance scenario in miniature: a 20% mixed fault stream. The
  // guarded controller must finish with a finite, bounded CR; the legacy
  // controller must die on the first non-finite reading.
  dist::LogNormal law(2.2, 0.9);
  util::Rng gen(27);
  const auto stops = law.sample_many(gen, 4000);
  robust::FaultInjector injector(robust::FaultProfile::scaled(0.2), 27);
  const auto readings = injector.corrupt_stream(stops);

  AdaptiveController guarded(robust_config(30, 0.995));
  util::Rng rng_g(28);
  for (std::size_t i = 0; i < stops.size(); ++i)
    guarded.process_stop_faulted(stops[i], readings[i], rng_g);
  EXPECT_TRUE(std::isfinite(guarded.totals().cr()));
  EXPECT_LT(guarded.totals().cr(), 4.0);
  EXPECT_EQ(guarded.totals().num_stops, stops.size());

  AdaptiveController::Config legacy_cfg;
  legacy_cfg.break_even = 28.0;
  legacy_cfg.warmup_stops = 30;
  AdaptiveController legacy(legacy_cfg);
  util::Rng rng_l(28);
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i < stops.size(); ++i)
          legacy.process_stop_faulted(stops[i], readings[i], rng_l);
      },
      std::invalid_argument);
}

TEST(DegradedControllerTest, DroppedReadingsAreCountedNotLearned) {
  AdaptiveController ctrl(robust_config(5));
  util::Rng rng(29);
  robust::SensorReading dropped;
  dropped.dropped = true;
  dropped.fault = robust::FaultKind::kDrop;
  for (int i = 0; i < 10; ++i) ctrl.process_stop_faulted(15.0, dropped, rng);
  EXPECT_EQ(ctrl.guard_counts().dropped, 10u);
  EXPECT_EQ(ctrl.guard_counts().accepted, 0u);
  EXPECT_EQ(ctrl.totals().num_stops, 10u);  // still priced on true length
  EXPECT_NE(ctrl.mode(), ControllerMode::kProposed);  // nothing learned
}

TEST(DegradedControllerTest, LegacyModeMatchesOriginalControllerExactly) {
  // robust.enabled = false must reproduce the seed behaviour bit-for-bit.
  AdaptiveController::Config cfg;
  cfg.break_even = 28.0;
  cfg.warmup_stops = 10;
  AdaptiveController legacy(cfg);
  auto rcfg = robust_config(10);
  rcfg.robust.guard.max_stop_s = std::numeric_limits<double>::infinity();
  rcfg.robust.guard.stuck_run_limit = 0;
  AdaptiveController guarded(rcfg);
  util::Rng rng(30);
  for (int i = 0; i < 500; ++i) {
    const double y = rng.exponential(40.0);
    EXPECT_DOUBLE_EQ(legacy.process_stop_expected(y),
                     guarded.process_stop_expected(y));
  }
  EXPECT_DOUBLE_EQ(legacy.totals().cr(), guarded.totals().cr());
}

}  // namespace
}  // namespace idlered
