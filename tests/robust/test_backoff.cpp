#include "robust/backoff.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace idlered::robust {
namespace {

ExponentialBackoff::Config no_jitter() {
  ExponentialBackoff::Config c;
  c.base = 1.0;
  c.multiplier = 2.0;
  c.max = 16.0;
  c.jitter = 0.0;
  return c;
}

TEST(BackoffConfigTest, ValidateRejectsBadKnobs) {
  ExponentialBackoff::Config c = no_jitter();
  c.base = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = no_jitter();
  c.multiplier = 0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = no_jitter();
  c.max = 0.5;  // below base
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = no_jitter();
  c.jitter = 1.0;  // must be < 1 so delays never collapse to zero
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = no_jitter();
  c.jitter = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(BackoffTest, DoublesUpToCapWithoutJitter) {
  ExponentialBackoff b(no_jitter(), 1);
  EXPECT_DOUBLE_EQ(b.next(), 1.0);
  EXPECT_DOUBLE_EQ(b.next(), 2.0);
  EXPECT_DOUBLE_EQ(b.next(), 4.0);
  EXPECT_DOUBLE_EQ(b.next(), 8.0);
  EXPECT_DOUBLE_EQ(b.next(), 16.0);
  EXPECT_DOUBLE_EQ(b.next(), 16.0);  // capped
  EXPECT_EQ(b.failures(), 6u);
}

TEST(BackoffTest, ResetReturnsToBase) {
  ExponentialBackoff b(no_jitter(), 1);
  b.next();
  b.next();
  b.reset();
  EXPECT_EQ(b.failures(), 0u);
  EXPECT_DOUBLE_EQ(b.next(), 1.0);
}

TEST(BackoffTest, PeekDoesNotEscalate) {
  ExponentialBackoff b(no_jitter(), 1);
  EXPECT_DOUBLE_EQ(b.peek(), 1.0);
  EXPECT_DOUBLE_EQ(b.peek(), 1.0);
  b.next();
  EXPECT_DOUBLE_EQ(b.peek(), 2.0);
}

TEST(BackoffTest, JitterStaysInsideTheContractedRange) {
  ExponentialBackoff::Config c = no_jitter();
  c.jitter = 0.5;
  ExponentialBackoff b(c, 42);
  // Delay k must land in [(1 - jitter) * d_k, d_k] for d_k the unjittered
  // schedule. This is the thundering-herd contract: jitter only ever
  // *shortens* a delay, never extends it past the deterministic envelope.
  double expected = 1.0;
  for (int i = 0; i < 12; ++i) {
    const double d = b.next();
    EXPECT_GE(d, 0.5 * expected - 1e-12);
    EXPECT_LE(d, expected + 1e-12);
    expected = std::min(expected * 2.0, 16.0);
  }
}

TEST(BackoffTest, SeedsDecorrelateStreams) {
  ExponentialBackoff::Config c = no_jitter();
  c.jitter = 0.5;
  ExponentialBackoff a(c, 1);
  ExponentialBackoff b(c, 2);
  // Same schedule, different seeds: at least one of the first draws must
  // differ, otherwise everyone re-promotes in lockstep.
  bool differs = false;
  for (int i = 0; i < 8; ++i)
    if (a.next() != b.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(BackoffTest, SameSeedIsDeterministic) {
  ExponentialBackoff::Config c = no_jitter();
  c.jitter = 0.5;
  ExponentialBackoff a(c, 7);
  ExponentialBackoff b(c, 7);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace idlered::robust
