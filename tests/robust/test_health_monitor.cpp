#include "robust/health_monitor.h"

#include <gtest/gtest.h>

namespace idlered::robust {
namespace {

TEST(HealthConfigTest, ValidateRejectsInvertedBands) {
  HealthConfig c;
  c.degraded_exit = 0.2;  // above degraded_enter = 0.1
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = HealthConfig{};
  c.critical_enter = 0.05;  // below degraded_enter
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = HealthConfig{};
  c.ewma_alpha = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = HealthConfig{};
  c.b_det_margin = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(HealthMonitorTest, StartsHealthy) {
  HealthMonitor m;
  EXPECT_EQ(m.state(), HealthState::kHealthy);
  EXPECT_FALSE(m.actuator_suspect());
  EXPECT_DOUBLE_EQ(m.anomaly_rate(), 0.0);
}

TEST(HealthMonitorTest, ConsecutiveAnomaliesEscalateThroughDegraded) {
  HealthMonitor m;
  bool saw_degraded = false;
  for (int i = 0; i < 60 && m.state() != HealthState::kCritical; ++i) {
    m.record_observation(true);
    if (m.state() == HealthState::kDegraded) saw_degraded = true;
  }
  EXPECT_TRUE(saw_degraded);  // never jumps Healthy -> Critical directly
  EXPECT_EQ(m.state(), HealthState::kCritical);
}

TEST(HealthMonitorTest, RecoversWithCleanStream) {
  HealthMonitor m;
  for (int i = 0; i < 60; ++i) m.record_observation(true);
  ASSERT_EQ(m.state(), HealthState::kCritical);
  for (int i = 0; i < 500; ++i) m.record_observation(false);
  EXPECT_EQ(m.state(), HealthState::kHealthy);
  EXPECT_LT(m.anomaly_rate(), 0.01);
}

TEST(HealthMonitorTest, HysteresisPreventsFlapping) {
  // A steady anomaly rate strictly inside the hysteresis band (EWMA
  // oscillation included) must never change the state, whichever side of
  // the band the monitor entered from. A single-threshold monitor would
  // flap on every band crossing.
  HealthConfig cfg;
  cfg.degraded_enter = 0.30;
  cfg.degraded_exit = 0.05;
  cfg.critical_enter = 0.60;
  cfg.critical_exit = 0.40;
  // Every 8th reading anomalous: steady EWMA range ~[0.10, 0.15].
  HealthMonitor healthy_side(cfg);
  for (int i = 0; i < 2000; ++i) healthy_side.record_observation(i % 8 == 0);
  EXPECT_EQ(healthy_side.state(), HealthState::kHealthy);

  HealthMonitor degraded_side(cfg);
  for (int i = 0; i < 40; ++i) degraded_side.record_observation(true);
  ASSERT_NE(degraded_side.state(), HealthState::kHealthy);
  int transitions = 0;
  HealthState last = degraded_side.state();
  for (int i = 0; i < 2000; ++i) {
    degraded_side.record_observation(i % 8 == 0);
    if (degraded_side.state() != last) {
      ++transitions;
      last = degraded_side.state();
    }
  }
  // At most the single Critical->Degraded settle; never a flap sequence.
  EXPECT_LE(transitions, 1);
  EXPECT_EQ(degraded_side.state(), HealthState::kDegraded);
}

TEST(HealthMonitorTest, ActuatorSuspectLatchesWithHysteresis) {
  HealthMonitor m;
  for (int i = 0; i < 40; ++i) m.record_restart(false);
  EXPECT_TRUE(m.actuator_suspect());
  // Still suspect while the rate sits between exit (0.1) and enter (0.3).
  for (int i = 0; i < 10; ++i) m.record_restart(true);
  EXPECT_TRUE(m.actuator_suspect());
  for (int i = 0; i < 200; ++i) m.record_restart(true);
  EXPECT_FALSE(m.actuator_suspect());
}

TEST(TrustBDetTest, AcceptsComfortablyFeasibleStats) {
  dist::ShortStopStats s;
  s.mu_b_minus = 0.1 * 28.0;  // mu/B = 0.1
  s.q_b_plus = 0.3;           // (1-q)^2/q = 1.63
  EXPECT_TRUE(trust_b_det(s, 28.0, 0.9));
}

TEST(TrustBDetTest, RejectsNearTheFeasibilityBoundary) {
  // mu/B just inside eq. (36): feasible for the raw check, but within the
  // 10% safety band, so the guarded controller must not trust it.
  dist::ShortStopStats s;
  s.q_b_plus = 0.3;
  const double boundary = (1.0 - s.q_b_plus) * (1.0 - s.q_b_plus) / s.q_b_plus;
  s.mu_b_minus = 0.95 * boundary * 28.0;
  EXPECT_FALSE(trust_b_det(s, 28.0, 0.9));
}

TEST(TrustBDetTest, RejectsDegenerateTails) {
  dist::ShortStopStats s;
  s.mu_b_minus = 5.0;
  s.q_b_plus = 0.0;
  EXPECT_FALSE(trust_b_det(s, 28.0));
  s.q_b_plus = 1.0;
  s.mu_b_minus = 0.0;
  EXPECT_FALSE(trust_b_det(s, 28.0));
}

TEST(TrustBDetTest, RejectsBStarOutsideInterval) {
  // Feasibility margin holds but b* = sqrt(mu B / q) >= B: degenerates to
  // DET, so the b-DET vertex must not be trusted.
  dist::ShortStopStats s;
  s.mu_b_minus = 8.7;
  s.q_b_plus = 0.105;
  EXPECT_GT(s.mu_b_minus * 28.0 / s.q_b_plus, 28.0 * 28.0);
  EXPECT_FALSE(trust_b_det(s, 28.0, 1.0));
}

TEST(HealthMonitorHistoryTest, StartsEmpty) {
  HealthMonitor m;
  EXPECT_TRUE(m.transitions().empty());
  EXPECT_TRUE(m.actuator_transitions().empty());
  EXPECT_EQ(m.observations(), 0u);
  EXPECT_EQ(m.restarts(), 0u);
}

TEST(HealthMonitorHistoryTest, RecordsExactTransitionTimestamps) {
  // All-anomalous stream, default config (alpha 0.05): the EWMA is
  // rate_n = 1 - 0.95^n, so degraded_enter (0.10) is first exceeded at
  // observation 3 (0.1426) and critical_enter (0.30) at observation 7
  // (0.3017). The logical `at` timestamps are the 1-based observation
  // counts at those edges — exactly reproducible, no wall clock involved.
  HealthMonitor m;
  for (int i = 0; i < 7; ++i) m.record_observation(true);
  EXPECT_EQ(m.observations(), 7u);

  const auto& hist = m.transitions();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0].at, 3u);
  EXPECT_EQ(hist[0].from, HealthState::kHealthy);
  EXPECT_EQ(hist[0].to, HealthState::kDegraded);
  EXPECT_EQ(hist[1].at, 7u);
  EXPECT_EQ(hist[1].from, HealthState::kDegraded);
  EXPECT_EQ(hist[1].to, HealthState::kCritical);

  // The recorded rates are the smoothed values at the moment each edge
  // fired — same iterative arithmetic, so bit-identical.
  double rate = 0.0;
  for (int i = 0; i < 3; ++i) rate = 0.95 * rate + 0.05;
  EXPECT_EQ(hist[0].anomaly_rate, rate);
  for (int i = 3; i < 7; ++i) rate = 0.95 * rate + 0.05;
  EXPECT_EQ(hist[1].anomaly_rate, rate);
}

TEST(HealthMonitorHistoryTest, RecoveryAppendsDescendingEdges) {
  HealthMonitor m;
  for (int i = 0; i < 7; ++i) m.record_observation(true);
  ASSERT_EQ(m.state(), HealthState::kCritical);
  for (int i = 0; i < 500 && m.state() != HealthState::kHealthy; ++i)
    m.record_observation(false);
  ASSERT_EQ(m.state(), HealthState::kHealthy);

  const auto& hist = m.transitions();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[2].from, HealthState::kCritical);
  EXPECT_EQ(hist[2].to, HealthState::kDegraded);
  EXPECT_LT(hist[2].anomaly_rate, m.config().critical_exit);
  EXPECT_EQ(hist[3].from, HealthState::kDegraded);
  EXPECT_EQ(hist[3].to, HealthState::kHealthy);
  EXPECT_LT(hist[3].anomaly_rate, m.config().degraded_exit);
  for (std::size_t i = 1; i < hist.size(); ++i)
    EXPECT_LT(hist[i - 1].at, hist[i].at);
  EXPECT_EQ(hist.back().at, m.observations());
}

TEST(HealthMonitorHistoryTest, ActuatorLatchHistoryIsTimestamped) {
  // Same EWMA, same 0.30 enter threshold as the anomaly path: an
  // all-failure restart stream latches suspect at restart 7.
  HealthMonitor m;
  for (int i = 0; i < 7; ++i) m.record_restart(false);
  ASSERT_TRUE(m.actuator_suspect());
  ASSERT_EQ(m.actuator_transitions().size(), 1u);
  EXPECT_EQ(m.actuator_transitions()[0].at, 7u);
  EXPECT_TRUE(m.actuator_transitions()[0].suspect);
  EXPECT_GT(m.actuator_transitions()[0].restart_failure_rate,
            m.config().actuator_enter);

  for (int i = 0; i < 200 && m.actuator_suspect(); ++i) m.record_restart(true);
  ASSERT_FALSE(m.actuator_suspect());
  ASSERT_EQ(m.actuator_transitions().size(), 2u);
  const auto& release = m.actuator_transitions()[1];
  EXPECT_FALSE(release.suspect);
  EXPECT_GT(release.at, 7u);
  EXPECT_EQ(release.at, m.restarts());
  EXPECT_LT(release.restart_failure_rate, m.config().actuator_exit);
  // The anomaly state machine is untouched by restart traffic.
  EXPECT_TRUE(m.transitions().empty());
}

TEST(TrustBDetTest, MarginBoundaryRegression) {
  // Regression for the eq. (36) guard band. With q = 0.6 the b* < B
  // condition is slack (mu < qB), so the margin check is the binding one:
  // trust flips exactly at mu/B = margin * (1-q)^2 / q. Stats landing
  // between the margined and the raw boundary are precisely the
  // estimation-noise band the guard exists to reject.
  const double b = 28.0;
  dist::ShortStopStats s;
  s.q_b_plus = 0.6;
  const double raw = (1.0 - s.q_b_plus) * (1.0 - s.q_b_plus) / s.q_b_plus;

  s.mu_b_minus = 0.99 * 0.9 * raw * b;  // inside the margined region
  EXPECT_TRUE(trust_b_det(s, b, 0.9));

  s.mu_b_minus = 1.01 * 0.9 * raw * b;  // raw-feasible, margin-rejected
  EXPECT_FALSE(trust_b_det(s, b, 0.9));
  EXPECT_TRUE(trust_b_det(s, b, 1.0));

  s.mu_b_minus = 1.01 * raw * b;  // outside eq. (36) entirely
  EXPECT_FALSE(trust_b_det(s, b, 0.9));
  EXPECT_FALSE(trust_b_det(s, b, 1.0));
}

TEST(TrustBDetTest, InvalidMarginThrows) {
  dist::ShortStopStats s;
  s.mu_b_minus = 2.0;
  s.q_b_plus = 0.3;
  EXPECT_THROW(trust_b_det(s, 28.0, 0.0), std::invalid_argument);
  EXPECT_THROW(trust_b_det(s, 28.0, 1.1), std::invalid_argument);
}


TEST(HealthMonitorTest, TransitionHistoryIsBounded) {
  HealthConfig cfg;
  cfg.max_history = 4;
  HealthMonitor m(cfg);
  // Drive the monitor through many state flips: long anomaly bursts
  // alternating with long clean stretches.
  for (int cycle = 0; cycle < 32; ++cycle) {
    for (int i = 0; i < 64; ++i) m.record_observation(true);
    for (int i = 0; i < 256; ++i) m.record_observation(false);
  }
  EXPECT_LE(m.transitions().size(), 4u);
  // The totals keep counting even though the log is truncated.
  EXPECT_GT(m.total_transitions(), 4u);
  EXPECT_GE(m.total_transitions(), 2u * 32u - 1u);
  // The retained entries are the most recent ones (monotone timestamps).
  const auto& log = m.transitions();
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LT(log[i - 1].at, log[i].at);
}

TEST(HealthMonitorTest, ZeroMaxHistoryKeepsEverything) {
  HealthConfig cfg;
  cfg.max_history = 0;  // unlimited
  HealthMonitor m(cfg);
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 64; ++i) m.record_observation(true);
    for (int i = 0; i < 256; ++i) m.record_observation(false);
  }
  EXPECT_EQ(m.transitions().size(), m.total_transitions());
}

TEST(HealthMonitorTest, ActuatorHistoryIsBoundedToo) {
  HealthConfig cfg;
  cfg.max_history = 2;
  HealthMonitor m(cfg);
  for (int cycle = 0; cycle < 16; ++cycle) {
    for (int i = 0; i < 64; ++i) m.record_restart(false);
    for (int i = 0; i < 256; ++i) m.record_restart(true);
  }
  EXPECT_LE(m.actuator_transitions().size(), 2u);
  EXPECT_GT(m.total_actuator_transitions(),
            m.actuator_transitions().size());
}

}  // namespace
}  // namespace idlered::robust
