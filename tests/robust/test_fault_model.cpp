#include "robust/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::robust {
namespace {

std::vector<double> some_stops(std::size_t n, std::uint64_t seed = 7) {
  dist::LogNormal law(2.0, 0.8);
  util::Rng rng(seed);
  return law.sample_many(rng, n);
}

bool readings_equal(const SensorReading& a, const SensorReading& b) {
  const bool value_same =
      a.value == b.value || (std::isnan(a.value) && std::isnan(b.value));
  return value_same && a.dropped == b.dropped && a.fault == b.fault &&
         a.actuation_delay_s == b.actuation_delay_s &&
         a.restart_attempts == b.restart_attempts;
}

TEST(FaultProfileTest, ScaledMassMatchesRate) {
  const auto p = FaultProfile::scaled(0.4);
  p.validate();
  const double mass = p.additive_noise_prob + p.multiplicative_noise_prob +
                      p.quantization_prob + p.stuck_prob + p.drop_prob +
                      p.nan_prob + p.negative_prob;
  EXPECT_NEAR(mass, 0.4, 1e-12);
}

TEST(FaultProfileTest, ValidateRejectsBadRates) {
  FaultProfile p;
  p.nan_prob = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FaultProfile{};
  p.nan_prob = 0.7;
  p.drop_prob = 0.7;  // mass > 1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FaultProfile{};
  p.restart_failure_attempts = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_THROW(FaultProfile::scaled(1.5), std::invalid_argument);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  // Acceptance: fault schedules are reproducible from a single seed.
  const auto stops = some_stops(5000);
  const auto p = FaultProfile::scaled(0.35);
  FaultInjector a(p, 99), b(p, 99);
  const auto sa = a.corrupt_stream(stops);
  const auto sb = b.corrupt_stream(stops);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i)
    ASSERT_TRUE(readings_equal(sa[i], sb[i])) << "at stop " << i;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k)
    EXPECT_EQ(a.count(static_cast<FaultKind>(k)),
              b.count(static_cast<FaultKind>(k)));
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  const auto stops = some_stops(2000);
  const auto p = FaultProfile::scaled(0.35);
  FaultInjector a(p, 1), b(p, 2);
  const auto sa = a.corrupt_stream(stops);
  const auto sb = b.corrupt_stream(stops);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < sa.size(); ++i)
    if (!readings_equal(sa[i], sb[i])) ++differing;
  EXPECT_GT(differing, 100u);
}

TEST(FaultInjectorTest, ZeroRateIsTransparent) {
  const auto stops = some_stops(500);
  FaultInjector inj(FaultProfile{}, 3);
  for (double y : stops) {
    const auto r = inj.corrupt(y);
    EXPECT_EQ(r.fault, FaultKind::kNone);
    EXPECT_FALSE(r.dropped);
    EXPECT_DOUBLE_EQ(r.value, y);
    EXPECT_DOUBLE_EQ(r.actuation_delay_s, 0.0);
    EXPECT_EQ(r.restart_attempts, 1);
  }
  EXPECT_EQ(inj.faulted_stops(), 0u);
}

TEST(FaultInjectorTest, FaultRatesRoughlyMatchProfile) {
  const auto stops = some_stops(20000);
  const auto p = FaultProfile::scaled(0.5);
  FaultInjector inj(p, 11);
  inj.corrupt_stream(stops);
  const double n = static_cast<double>(stops.size());
  EXPECT_NEAR(inj.count(FaultKind::kNanGlitch) / n, p.nan_prob, 0.02);
  EXPECT_NEAR(inj.count(FaultKind::kDrop) / n, p.drop_prob, 0.02);
  EXPECT_NEAR(inj.count(FaultKind::kActuationDelay) / n,
              p.actuation_delay_prob, 0.02);
  EXPECT_NEAR(inj.count(FaultKind::kRestartFailure) / n,
              p.restart_failure_prob, 0.02);
}

TEST(FaultInjectorTest, FaultShapesAreAsAdvertised) {
  const auto stops = some_stops(20000);
  auto p = FaultProfile::scaled(0.6);
  p.quantization_step_s = 10.0;
  FaultInjector inj(p, 13);
  std::size_t checked = 0;
  for (double y : stops) {
    const auto r = inj.corrupt(y);
    switch (r.fault) {
      case FaultKind::kNanGlitch:
        EXPECT_TRUE(std::isnan(r.value));
        ++checked;
        break;
      case FaultKind::kNegativeGlitch:
        EXPECT_LT(r.value, 0.0);
        ++checked;
        break;
      case FaultKind::kQuantization:
        EXPECT_NEAR(std::fmod(r.value, 10.0), 0.0, 1e-9);
        ++checked;
        break;
      case FaultKind::kAdditiveNoise:
      case FaultKind::kMultiplicativeNoise:
        EXPECT_GE(r.value, 0.0);
        EXPECT_TRUE(std::isfinite(r.value));
        ++checked;
        break;
      case FaultKind::kDrop:
        EXPECT_TRUE(r.dropped);
        ++checked;
        break;
      default:
        break;
    }
    if (r.restart_attempts > 1) {
      EXPECT_EQ(r.restart_attempts, p.restart_failure_attempts);
    }
  }
  EXPECT_GT(checked, 1000u);
}

TEST(FaultInjectorTest, StuckSensorRepeatsHeldValue) {
  FaultProfile p;
  p.stuck_prob = 1.0;       // freeze immediately
  p.stuck_release_prob = 0.0;  // and never release
  FaultInjector inj(p, 17);
  const auto first = inj.corrupt(12.0);
  EXPECT_EQ(first.fault, FaultKind::kStuckAt);
  for (double y : {1.0, 55.0, 7.0, 300.0}) {
    const auto r = inj.corrupt(y);
    EXPECT_EQ(r.fault, FaultKind::kStuckAt);
    EXPECT_DOUBLE_EQ(r.value, 12.0);
  }
}

TEST(FaultKindTest, NamesAreUnique) {
  std::vector<std::string> names;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k)
    names.push_back(to_string(static_cast<FaultKind>(k)));
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
}

}  // namespace
}  // namespace idlered::robust
