#include "robust/input_guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace idlered::robust {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GuardConfigTest, ValidateRejectsBadRanges) {
  GuardConfig c;
  c.min_stop_s = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = GuardConfig{};
  c.max_stop_s = 0.0;
  c.min_stop_s = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = GuardConfig{};
  c.min_stop_s = kNan;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(InputGuardTest, ClassifiesHostileValues) {
  InputGuard g;
  EXPECT_EQ(g.check(10.0), Verdict::kAccept);
  EXPECT_EQ(g.check(0.0), Verdict::kAccept);
  EXPECT_EQ(g.check(kNan), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.check(kInf), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.check(-kInf), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.check(-3.0), Verdict::kRejectNegative);
  EXPECT_EQ(g.check(5.0 * 3600.0), Verdict::kRejectOutOfRange);
}

TEST(InputGuardTest, CountsVerdicts) {
  InputGuard g;
  g.admit(5.0);
  g.admit(kNan);
  g.admit(-2.0);
  g.admit(1e9);
  g.admit(12.0);
  g.note_drop();
  const auto& c = g.counts();
  EXPECT_EQ(c.accepted, 2u);
  EXPECT_EQ(c.non_finite, 1u);
  EXPECT_EQ(c.negative, 1u);
  EXPECT_EQ(c.out_of_range, 1u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.total(), 6u);
  EXPECT_EQ(c.anomalies(), 4u);
  EXPECT_NEAR(g.anomaly_fraction(), 4.0 / 6.0, 1e-12);
}

TEST(InputGuardTest, EmptyAnomalyFractionIsZero) {
  EXPECT_DOUBLE_EQ(InputGuard{}.anomaly_fraction(), 0.0);
}

TEST(InputGuardTest, FrozenSensorDetectedAfterRunLimit) {
  GuardConfig cfg;
  cfg.stuck_run_limit = 4;
  InputGuard g(cfg);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g.admit(9.5), Verdict::kAccept);
  EXPECT_EQ(g.admit(9.5), Verdict::kRejectStuck);
  EXPECT_EQ(g.admit(9.5), Verdict::kRejectStuck);
  // A changed value unfreezes the tracker immediately.
  EXPECT_EQ(g.admit(10.0), Verdict::kAccept);
  EXPECT_EQ(g.admit(9.5), Verdict::kAccept);
}

TEST(InputGuardTest, StuckDetectionDisabledByZeroLimit) {
  GuardConfig cfg;
  cfg.stuck_run_limit = 0;
  InputGuard g(cfg);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.admit(9.5), Verdict::kAccept);
}

TEST(InputGuardTest, StuckTrackerSeesRejectedValuesToo) {
  // A sensor frozen on an out-of-range value is still frozen; the run
  // length must keep growing through the rejections.
  GuardConfig cfg;
  cfg.stuck_run_limit = 3;
  cfg.max_stop_s = 100.0;
  InputGuard g(cfg);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(g.admit(500.0), Verdict::kRejectOutOfRange);
  EXPECT_EQ(g.admit(500.0), Verdict::kRejectStuck);
}

TEST(InputGuardTest, VerdictNamesAreDistinct) {
  EXPECT_NE(to_string(Verdict::kAccept), to_string(Verdict::kRejectStuck));
  EXPECT_NE(to_string(Verdict::kRejectNonFinite),
            to_string(Verdict::kRejectNegative));
}

}  // namespace
}  // namespace idlered::robust
