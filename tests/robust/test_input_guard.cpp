#include "robust/input_guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace idlered::robust {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GuardConfigTest, ValidateRejectsBadRanges) {
  GuardConfig c;
  c.min_stop_s = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = GuardConfig{};
  c.max_stop_s = 0.0;
  c.min_stop_s = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = GuardConfig{};
  c.min_stop_s = kNan;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(InputGuardTest, ClassifiesHostileValues) {
  InputGuard g;
  EXPECT_EQ(g.check(10.0), Verdict::kAccept);
  EXPECT_EQ(g.check(0.0), Verdict::kAccept);
  EXPECT_EQ(g.check(kNan), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.check(kInf), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.check(-kInf), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.check(-3.0), Verdict::kRejectNegative);
  EXPECT_EQ(g.check(5.0 * 3600.0), Verdict::kRejectOutOfRange);
}

TEST(InputGuardTest, CountsVerdicts) {
  InputGuard g;
  g.admit(5.0);
  g.admit(kNan);
  g.admit(-2.0);
  g.admit(1e9);
  g.admit(12.0);
  g.note_drop();
  const auto& c = g.counts();
  EXPECT_EQ(c.accepted, 2u);
  EXPECT_EQ(c.non_finite, 1u);
  EXPECT_EQ(c.negative, 1u);
  EXPECT_EQ(c.out_of_range, 1u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.total(), 6u);
  EXPECT_EQ(c.anomalies(), 4u);
  EXPECT_NEAR(g.anomaly_fraction(), 4.0 / 6.0, 1e-12);
}

TEST(InputGuardTest, EmptyAnomalyFractionIsZero) {
  EXPECT_DOUBLE_EQ(InputGuard{}.anomaly_fraction(), 0.0);
}

TEST(InputGuardTest, FrozenSensorDetectedAfterRunLimit) {
  GuardConfig cfg;
  cfg.stuck_run_limit = 4;
  InputGuard g(cfg);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g.admit(9.5), Verdict::kAccept);
  EXPECT_EQ(g.admit(9.5), Verdict::kRejectStuck);
  EXPECT_EQ(g.admit(9.5), Verdict::kRejectStuck);
  // A changed value unfreezes the tracker immediately.
  EXPECT_EQ(g.admit(10.0), Verdict::kAccept);
  EXPECT_EQ(g.admit(9.5), Verdict::kAccept);
}

TEST(InputGuardTest, StuckDetectionDisabledByZeroLimit) {
  GuardConfig cfg;
  cfg.stuck_run_limit = 0;
  InputGuard g(cfg);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.admit(9.5), Verdict::kAccept);
}

TEST(InputGuardTest, StuckTrackerSeesRejectedValuesToo) {
  // A sensor frozen on an out-of-range value is still frozen; the run
  // length must keep growing through the rejections.
  GuardConfig cfg;
  cfg.stuck_run_limit = 3;
  cfg.max_stop_s = 100.0;
  InputGuard g(cfg);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(g.admit(500.0), Verdict::kRejectOutOfRange);
  EXPECT_EQ(g.admit(500.0), Verdict::kRejectStuck);
}

TEST(InputGuardTest, VerdictNamesAreDistinct) {
  EXPECT_NE(to_string(Verdict::kAccept), to_string(Verdict::kRejectStuck));
  EXPECT_NE(to_string(Verdict::kRejectNonFinite),
            to_string(Verdict::kRejectNegative));
}

// ---- streaming (timestamped) path -----------------------------------------

TEST(InputGuardStreamingTest, RejectsHostileValuesWithTimestamps) {
  InputGuard g;
  // Regression for the streaming path: NaN / negative / Inf stop durations
  // must be rejected regardless of a perfectly fine timestamp.
  EXPECT_EQ(g.admit(kNan, 1.0), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.admit(kInf, 2.0), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.admit(-5.0, 3.0), Verdict::kRejectNegative);
  EXPECT_EQ(g.counts().accepted, 0u);
  EXPECT_EQ(g.counts().anomalies(), 3u);
  // None of those advanced the timestamp watermark.
  EXPECT_FALSE(g.has_timestamp());
}

TEST(InputGuardStreamingTest, RejectsOutOfOrderTimestamps) {
  InputGuard g;
  EXPECT_EQ(g.admit(10.0, 100.0), Verdict::kAccept);
  EXPECT_EQ(g.last_timestamp(), 100.0);
  // Strictly-after is required: equal and earlier both reject.
  EXPECT_EQ(g.admit(10.0, 100.0), Verdict::kRejectOutOfOrder);
  EXPECT_EQ(g.admit(10.0, 99.0), Verdict::kRejectOutOfOrder);
  // A non-finite timestamp is out-of-order by definition.
  EXPECT_EQ(g.admit(10.0, kNan), Verdict::kRejectOutOfOrder);
  EXPECT_EQ(g.counts().out_of_order, 3u);
  // The watermark did not move, so progress is still possible.
  EXPECT_EQ(g.admit(10.0, 101.0), Verdict::kAccept);
  EXPECT_EQ(g.counts().accepted, 2u);
  EXPECT_EQ(g.counts().total(), 5u);
}

TEST(InputGuardStreamingTest, ValueVerdictWinsOverTimestamp) {
  InputGuard g;
  ASSERT_EQ(g.admit(10.0, 10.0), Verdict::kAccept);
  // Both the value and the timestamp are bad: the value verdict is
  // reported (it is what the anomaly counters key on).
  EXPECT_EQ(g.admit(kNan, 5.0), Verdict::kRejectNonFinite);
  EXPECT_EQ(g.counts().non_finite, 1u);
  EXPECT_EQ(g.counts().out_of_order, 0u);
}

TEST(InputGuardStreamingTest, CheckIsPureAdmitRecords) {
  InputGuard g;
  ASSERT_EQ(g.admit(10.0, 10.0), Verdict::kAccept);
  EXPECT_EQ(g.check(11.0, 9.0), Verdict::kRejectOutOfOrder);
  EXPECT_EQ(g.counts().total(), 1u);  // check() recorded nothing
}

TEST(InputGuardStreamingTest, StateRoundTripRestoresAllTrackers) {
  GuardConfig cfg;
  cfg.stuck_run_limit = 3;
  InputGuard g(cfg);
  ASSERT_EQ(g.admit(42.0, 1.0), Verdict::kAccept);
  ASSERT_EQ(g.admit(42.0, 2.0), Verdict::kAccept);
  ASSERT_EQ(g.admit(kNan, 3.0), Verdict::kRejectNonFinite);

  const InputGuard::State saved = g.state();
  InputGuard fresh(cfg);
  fresh.restore(saved);

  // Both guards must now agree on every future verdict: the stuck-run
  // tracker (one more 42.0 trips the limit) and the timestamp watermark
  // both carried over.
  EXPECT_EQ(fresh.admit(42.0, 4.0), g.admit(42.0, 4.0));
  EXPECT_EQ(fresh.counts().stuck, g.counts().stuck);
  EXPECT_EQ(fresh.admit(7.0, 1.5), Verdict::kRejectOutOfOrder);
  EXPECT_EQ(g.admit(7.0, 1.5), Verdict::kRejectOutOfOrder);
  EXPECT_EQ(fresh.counts().total(), g.counts().total());
  EXPECT_EQ(fresh.last_timestamp(), g.last_timestamp());
}

}  // namespace
}  // namespace idlered::robust
