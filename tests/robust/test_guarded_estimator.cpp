#include "robust/guarded_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::robust {
namespace {

constexpr double kB = 28.0;
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GuardedEstimatorTest, AbsorbsHostileValuesWithoutThrowing) {
  GuardedEstimator e(kB, 1.0);
  EXPECT_EQ(e.observe(kNan), Verdict::kRejectNonFinite);
  EXPECT_EQ(e.observe(kInf), Verdict::kRejectNonFinite);
  EXPECT_EQ(e.observe(-5.0), Verdict::kRejectNegative);
  EXPECT_EQ(e.observe(1e8), Verdict::kRejectOutOfRange);
  EXPECT_FALSE(e.ready());
  EXPECT_EQ(e.accepted(), 0u);
}

TEST(GuardedEstimatorTest, StatsMatchCleanEstimatorOnAcceptedSubset) {
  GuardedEstimator guarded(kB, 1.0);
  core::StatsEstimator clean(kB);
  dist::LogNormal law(2.5, 1.0);
  util::Rng rng(41);
  for (int i = 0; i < 2000; ++i) {
    const double y = law.sample(rng);
    clean.observe(y);
    guarded.observe(y);
    // Interleave garbage the guard must filter out.
    if (i % 7 == 0) guarded.observe(kNan);
    if (i % 11 == 0) guarded.observe(-y);
  }
  ASSERT_TRUE(guarded.ready());
  EXPECT_NEAR(guarded.stats().mu_b_minus, clean.stats().mu_b_minus, 1e-9);
  EXPECT_NEAR(guarded.stats().q_b_plus, clean.stats().q_b_plus, 1e-9);
  EXPECT_EQ(guarded.accepted(), 2000u);
}

TEST(GuardedEstimatorTest, StatsOrFallsBackBeforeFirstAcceptance) {
  GuardedEstimator e(kB, 0.9);
  dist::ShortStopStats prior;
  prior.mu_b_minus = 3.0;
  prior.q_b_plus = 0.5;
  const auto s = e.stats_or(prior);
  EXPECT_DOUBLE_EQ(s.mu_b_minus, 3.0);
  EXPECT_DOUBLE_EQ(s.q_b_plus, 0.5);
  EXPECT_THROW(e.stats(), std::logic_error);  // strict accessor still strict

  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.stats_or(prior).mu_b_minus, 10.0);
  EXPECT_DOUBLE_EQ(e.stats_or(prior).q_b_plus, 0.0);
}

TEST(GuardedEstimatorTest, AllRejectedStreamNeverThrows) {
  GuardedEstimator e(kB, 1.0);
  for (int i = 0; i < 100; ++i) {
    e.observe(kNan);
    e.observe(-1.0);
    e.note_drop();
  }
  EXPECT_FALSE(e.ready());
  EXPECT_EQ(e.guard().counts().anomalies(), 300u);
  EXPECT_DOUBLE_EQ(e.guard().anomaly_fraction(), 1.0);
}

TEST(GuardedEstimatorTest, EstimateStaysFeasibleAndFinite) {
  GuardedEstimator e(kB, 0.95);
  dist::Pareto law(5.0, 1.3);
  util::Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    e.observe(law.sample(rng));
    if (i % 3 == 0) e.observe(kNan);
    const auto s = e.stats();
    EXPECT_TRUE(std::isfinite(s.mu_b_minus));
    EXPECT_TRUE(std::isfinite(s.q_b_plus));
    EXPECT_TRUE(s.feasible(kB));
  }
}

TEST(GuardedEstimatorTest, CustomGuardRangeApplies) {
  GuardConfig cfg;
  cfg.max_stop_s = 100.0;
  GuardedEstimator e(kB, 1.0, cfg);
  EXPECT_EQ(e.observe(99.0), Verdict::kAccept);
  EXPECT_EQ(e.observe(101.0), Verdict::kRejectOutOfRange);
  EXPECT_EQ(e.accepted(), 1u);
}

}  // namespace
}  // namespace idlered::robust
