// S3: hostile inputs (NaN, Inf, negatives) thrown at every public entry
// point that prices or learns from stop lengths. Strict components must
// reject with std::invalid_argument *without* corrupting their state; the
// guarded paths must absorb. In no case may a NaN leak into a cost total.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/estimator.h"
#include "core/policies.h"
#include "sim/controller.h"
#include "sim/evaluator.h"
#include "util/random.h"

namespace idlered {
namespace {

constexpr double kB = 28.0;
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> hostile_values() { return {kNan, kInf, -kInf, -1.0, -0.5}; }

TEST(HostileInputTest, StatsEstimatorRejectsAndKeepsState) {
  core::StatsEstimator e(kB);
  e.observe(10.0);
  e.observe(40.0);
  const auto before = e.stats();
  for (double v : hostile_values()) {
    EXPECT_THROW(e.observe(v), std::invalid_argument) << "value " << v;
  }
  EXPECT_EQ(e.count(), 2u);
  EXPECT_DOUBLE_EQ(e.stats().mu_b_minus, before.mu_b_minus);
  EXPECT_DOUBLE_EQ(e.stats().q_b_plus, before.q_b_plus);
}

TEST(HostileInputTest, DecayingEstimatorRejectsAndKeepsState) {
  core::DecayingStatsEstimator e(kB, 0.95);
  e.observe(5.0);
  e.observe(60.0);
  const auto before = e.stats();
  for (double v : hostile_values()) {
    EXPECT_THROW(e.observe(v), std::invalid_argument) << "value " << v;
  }
  // A rejected observation must not have applied the decay either.
  EXPECT_DOUBLE_EQ(e.stats().mu_b_minus, before.mu_b_minus);
  EXPECT_DOUBLE_EQ(e.stats().q_b_plus, before.q_b_plus);
}

TEST(HostileInputTest, EvaluatorExpectedRejectsNonFinite) {
  const auto policy = core::make_det(kB);
  for (double v : {kNan, kInf, -kInf}) {
    const std::vector<double> stops{10.0, v};
    EXPECT_THROW(sim::evaluate(*policy, stops), std::invalid_argument);
  }
}

TEST(HostileInputTest, EvaluatorSampledRejectsNonFinite) {
  const auto policy = core::make_n_rand(kB);
  util::Rng rng(5);
  for (double v : {kNan, kInf, -kInf}) {
    const std::vector<double> stops{10.0, v};
    EXPECT_THROW(
        sim::evaluate(*policy, stops, {sim::EvalMode::kSampled, &rng}),
        std::invalid_argument);
  }
}

TEST(HostileInputTest, OfflineTotalRejectsNonFinite) {
  // The offline denominator is computed inside evaluate(); hostile stops
  // must be rejected there before poisoning the accumulated totals.
  const auto policy = core::make_det(kB);
  for (double v : {kNan, kInf, -kInf}) {
    const std::vector<double> stops{v};
    EXPECT_THROW(sim::evaluate(*policy, stops), std::invalid_argument);
  }
}

TEST(HostileInputTest, LegacyControllerThrowsWithTotalsUntouched) {
  sim::AdaptiveController::Config cfg;
  cfg.break_even = kB;
  cfg.warmup_stops = 1;
  sim::AdaptiveController ctrl(cfg);
  ctrl.process_stop_expected(10.0);
  const double online_before = ctrl.totals().online;
  util::Rng rng(6);
  for (double v : hostile_values()) {
    EXPECT_THROW(ctrl.process_stop_expected(v), std::invalid_argument);
    EXPECT_THROW(ctrl.process_stop_sampled(v, rng), std::invalid_argument);
    EXPECT_THROW(ctrl.observe_reading(v), std::invalid_argument);
  }
  EXPECT_EQ(ctrl.totals().num_stops, 1u);
  EXPECT_DOUBLE_EQ(ctrl.totals().online, online_before);
}

TEST(HostileInputTest, RobustControllerAbsorbsWithFiniteTotals) {
  sim::AdaptiveController::Config cfg;
  cfg.break_even = kB;
  cfg.warmup_stops = 1;
  cfg.robust.enabled = true;
  sim::AdaptiveController ctrl(cfg);
  ctrl.process_stop_expected(10.0);
  for (double v : hostile_values()) {
    EXPECT_NO_THROW(ctrl.process_stop_expected(v)) << "value " << v;
  }
  EXPECT_TRUE(std::isfinite(ctrl.totals().online));
  EXPECT_TRUE(std::isfinite(ctrl.totals().offline));
  EXPECT_TRUE(std::isfinite(ctrl.totals().cr()));
  // Absorbed stops charge nothing and are not counted as priced stops.
  EXPECT_EQ(ctrl.totals().num_stops, 1u);
  EXPECT_EQ(ctrl.guard_counts().anomalies(), hostile_values().size());
}

TEST(HostileInputTest, FaultedPathRequiresFiniteTruth) {
  // The harness owns true_length; garbage there is a harness bug, not a
  // sensor fault, and must throw even in robust mode.
  sim::AdaptiveController::Config cfg;
  cfg.break_even = kB;
  cfg.warmup_stops = 1;
  cfg.robust.enabled = true;
  sim::AdaptiveController ctrl(cfg);
  util::Rng rng(7);
  robust::SensorReading clean;
  clean.value = 10.0;
  for (double v : {kNan, kInf, -1.0}) {
    EXPECT_THROW(ctrl.process_stop_faulted(v, clean, rng),
                 std::invalid_argument);
  }
}

TEST(HostileInputTest, NanNeverReachesCostsUnderSustainedGlitches) {
  sim::AdaptiveController::Config cfg;
  cfg.break_even = kB;
  cfg.warmup_stops = 5;
  cfg.robust.enabled = true;
  sim::AdaptiveController ctrl(cfg);
  util::Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const double y = rng.exponential(25.0);
    robust::SensorReading reading;
    reading.value = (i % 3 == 0) ? kNan : y;
    if (i % 3 == 0) reading.fault = robust::FaultKind::kNanGlitch;
    const double cost = ctrl.process_stop_faulted(y, reading, rng);
    ASSERT_TRUE(std::isfinite(cost)) << "stop " << i;
  }
  EXPECT_TRUE(std::isfinite(ctrl.totals().cr()));
  EXPECT_GT(ctrl.totals().online, 0.0);
}

}  // namespace
}  // namespace idlered
