#include "traffic/microsim.h"

#include <gtest/gtest.h>

#include "dist/distribution.h"
#include "stats/descriptive.h"
#include "util/random.h"

namespace idlered::traffic {
namespace {

MicrosimConfig base_config() {
  MicrosimConfig c;
  c.signal.cycle_s = 60.0;
  c.signal.green_s = 30.0;
  c.arrival_rate_per_s = 0.08;
  return c;
}

TEST(MicrosimTest, SignalPhases) {
  MicroSimulator sim(base_config());
  EXPECT_TRUE(sim.is_green(0.0));
  EXPECT_TRUE(sim.is_green(29.9));
  EXPECT_FALSE(sim.is_green(30.1));
  EXPECT_FALSE(sim.is_green(59.9));
  EXPECT_TRUE(sim.is_green(60.5));
}

TEST(MicrosimTest, RedLightProducesStops) {
  MicroSimulator sim(base_config());
  util::Rng rng(1);
  const auto stops = sim.stop_durations(3600.0, rng);
  EXPECT_GT(stops.size(), 20u);
  for (double s : stops) EXPECT_GT(s, 0.0);
}

TEST(MicrosimTest, AlwaysGreenEquivalentProducesFewStops) {
  // A nearly-always-green signal on a light road: free flow, almost no
  // stops (IDM never brakes to rest without an obstruction).
  MicrosimConfig c = base_config();
  c.signal.green_s = 59.0;  // 1 s of red per minute
  c.arrival_rate_per_s = 0.02;
  MicroSimulator sim(c);
  util::Rng rng(2);
  const auto stops = sim.stop_durations(3600.0, rng);
  MicroSimulator busy(base_config());
  util::Rng rng2(2);
  const auto busy_stops = busy.stop_durations(3600.0, rng2);
  EXPECT_LT(stops.size(), busy_stops.size() / 3);
}

TEST(MicrosimTest, StopsBoundedByRedPlusQueueDischarge) {
  // Light demand: waits are one red phase plus modest queue delay.
  MicrosimConfig c = base_config();
  c.arrival_rate_per_s = 0.03;
  MicroSimulator sim(c);
  util::Rng rng(3);
  const auto stops = sim.stop_durations(7200.0, rng);
  ASSERT_GT(stops.size(), 10u);
  EXPECT_LT(stats::max(stops), c.signal.cycle_s + 20.0);
}

TEST(MicrosimTest, HeavierDemandLongerWaits) {
  MicrosimConfig light = base_config();
  light.arrival_rate_per_s = 0.03;
  MicrosimConfig heavy = base_config();
  heavy.arrival_rate_per_s = 0.20;
  util::Rng rng_l(4);
  util::Rng rng_h(4);
  const auto stops_l = MicroSimulator(light).stop_durations(7200.0, rng_l);
  const auto stops_h = MicroSimulator(heavy).stop_durations(7200.0, rng_h);
  ASSERT_GT(stops_l.size(), 10u);
  ASSERT_GT(stops_h.size(), 10u);
  EXPECT_GT(stats::mean(stops_h), stats::mean(stops_l));
}

TEST(MicrosimTest, NoCollisions) {
  // Vehicles never overlap: verify via the emergent stop pattern — no
  // negative durations and plausible event ordering. (Positions aren't
  // exposed; IDM guarantees collision-free following for these params, and
  // a crash would manifest as NaN/negative durations.)
  MicrosimConfig c = base_config();
  c.arrival_rate_per_s = 0.25;  // saturated
  MicroSimulator sim(c);
  util::Rng rng(5);
  for (const auto& e : sim.run(3600.0, rng)) {
    EXPECT_GE(e.duration_s, 0.0);
    EXPECT_GE(e.start_s, 0.0);
    EXPECT_TRUE(std::isfinite(e.duration_s));
  }
}

TEST(MicrosimTest, DeterministicUnderSeed) {
  MicroSimulator sim(base_config());
  util::Rng a(6);
  util::Rng b(6);
  const auto sa = sim.stop_durations(1800.0, a);
  const auto sb = sim.stop_durations(1800.0, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(MicrosimTest, EmergentStopsFeedSkiRentalStats) {
  // End-to-end: the emergent stop-length sample yields usable
  // (mu_B-, q_B+) statistics.
  MicroSimulator sim(base_config());
  util::Rng rng(7);
  const auto stops = sim.stop_durations(7200.0, rng);
  ASSERT_GT(stops.size(), 30u);
  const auto s = dist::ShortStopStats::from_sample(stops, 28.0);
  EXPECT_TRUE(s.feasible(28.0));
  EXPECT_GT(s.mu_b_minus + s.q_b_plus, 0.0);
}

TEST(MicrosimTest, InvalidConfigsThrow) {
  MicrosimConfig c = base_config();
  c.signal_position_m = 2000.0;  // beyond the road
  EXPECT_THROW(MicroSimulator{c}, std::invalid_argument);
  c = base_config();
  c.time_step_s = 0.0;
  EXPECT_THROW(MicroSimulator{c}, std::invalid_argument);
  c = base_config();
  c.idm.max_accel_mps2 = 0.0;
  EXPECT_THROW(MicroSimulator{c}, std::invalid_argument);
  MicroSimulator ok(base_config());
  util::Rng rng(8);
  EXPECT_THROW(ok.run(0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::traffic
