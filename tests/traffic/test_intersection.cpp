#include "traffic/intersection.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/random.h"

namespace idlered::traffic {
namespace {

IntersectionConfig light_traffic() {
  IntersectionConfig c;
  c.signal.cycle_s = 90.0;
  c.signal.green_s = 45.0;
  c.arrival_rate_per_s = 0.02;  // rho ~ 0.08
  return c;
}

IntersectionConfig heavy_traffic() {
  IntersectionConfig c;
  c.signal.cycle_s = 90.0;
  c.signal.green_s = 45.0;
  c.arrival_rate_per_s = 0.20;  // rho ~ 0.8
  return c;
}

TEST(IntersectionTest, UtilizationFormula) {
  // capacity = (45/90) / 2 = 0.25 veh/s.
  EXPECT_NEAR(IntersectionSimulator(heavy_traffic()).utilization(),
              0.20 / 0.25, 1e-12);
}

TEST(IntersectionTest, AllStopsPositive) {
  IntersectionSimulator sim(light_traffic());
  util::Rng rng(1);
  for (double s : sim.simulate(50000.0, rng)) EXPECT_GT(s, 0.0);
}

TEST(IntersectionTest, LightTrafficWaitsBoundedByRedPhase) {
  // With nearly empty queues, no stop should much exceed one red phase
  // plus start-up time.
  IntersectionSimulator sim(light_traffic());
  util::Rng rng(2);
  const auto stops = sim.simulate(200000.0, rng);
  ASSERT_GT(stops.size(), 100u);
  const double red = 45.0;
  std::size_t over = 0;
  for (double s : stops) {
    if (s > red + 10.0) ++over;
  }
  // A small fraction may queue behind one vehicle; multi-cycle waits should
  // be essentially absent.
  EXPECT_LT(static_cast<double>(over) / static_cast<double>(stops.size()),
            0.05);
}

TEST(IntersectionTest, HeavyTrafficProducesLongerWaits) {
  util::Rng rng_l(3);
  util::Rng rng_h(3);
  const auto light = IntersectionSimulator(light_traffic())
                         .simulate(300000.0, rng_l);
  const auto heavy = IntersectionSimulator(heavy_traffic())
                         .simulate(300000.0, rng_h);
  ASSERT_GT(light.size(), 100u);
  ASSERT_GT(heavy.size(), 100u);
  EXPECT_GT(stats::mean(heavy), stats::mean(light));
  EXPECT_GT(stats::max(heavy), 90.0);  // multi-cycle waits appear
}

TEST(IntersectionTest, HeavierDemandStopsMoreVehicles) {
  util::Rng rng_l(4);
  util::Rng rng_h(4);
  const double horizon = 200000.0;
  const auto light =
      IntersectionSimulator(light_traffic()).simulate(horizon, rng_l);
  const auto heavy =
      IntersectionSimulator(heavy_traffic()).simulate(horizon, rng_h);
  // Stop *rate* (stops per arrival) grows with demand.
  const double light_rate = static_cast<double>(light.size()) /
                            (light_traffic().arrival_rate_per_s * horizon);
  const double heavy_rate = static_cast<double>(heavy.size()) /
                            (heavy_traffic().arrival_rate_per_s * horizon);
  EXPECT_GT(heavy_rate, light_rate);
}

TEST(IntersectionTest, DeterministicUnderSeed) {
  IntersectionSimulator sim(heavy_traffic());
  util::Rng a(7);
  util::Rng b(7);
  const auto sa = sim.simulate(50000.0, a);
  const auto sb = sim.simulate(50000.0, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(IntersectionTest, InvalidConfigurationsThrow) {
  IntersectionConfig c = light_traffic();
  c.signal.green_s = c.signal.cycle_s;  // no red phase
  EXPECT_THROW(IntersectionSimulator{c}, std::invalid_argument);
  c = light_traffic();
  c.arrival_rate_per_s = 0.0;
  EXPECT_THROW(IntersectionSimulator{c}, std::invalid_argument);
  c = light_traffic();
  c.saturation_headway_s = -1.0;
  EXPECT_THROW(IntersectionSimulator{c}, std::invalid_argument);
}

TEST(IntersectionTest, InvalidHorizonThrows) {
  IntersectionSimulator sim(light_traffic());
  util::Rng rng(8);
  EXPECT_THROW(sim.simulate(0.0, rng), std::invalid_argument);
}

TEST(CorridorTest, PoolsAllIntersections) {
  CorridorConfig corridor;
  corridor.intersections = {light_traffic(), heavy_traffic()};
  util::Rng rng(9);
  const auto pooled = simulate_corridor(corridor, 100000.0, rng);
  // Two intersections pooled: clearly more stops than either one alone
  // could produce under light traffic.
  EXPECT_GT(pooled.size(), 100u);
}

TEST(CorridorTest, EmptyCorridorThrows) {
  CorridorConfig corridor;
  util::Rng rng(10);
  EXPECT_THROW(simulate_corridor(corridor, 1000.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::traffic
