#include "traffic/arterial.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/random.h"

namespace idlered::traffic {
namespace {

ArterialConfig quiet_corridor(int n = 5) {
  ArterialConfig c = green_wave(n, 90.0, 45.0, 60.0);
  c.queue_delay_s = 0.0;
  c.link_sigma = 0.0;
  return c;
}

TEST(ArterialConfigTest, GreenWaveOffsetsFollowTravelTime) {
  const auto c = green_wave(4, 90.0, 45.0, 60.0);
  ASSERT_EQ(c.offsets_s.size(), 4u);
  EXPECT_DOUBLE_EQ(c.offsets_s[0], 0.0);
  EXPECT_DOUBLE_EQ(c.offsets_s[1], 60.0);
  EXPECT_DOUBLE_EQ(c.offsets_s[2], 30.0);  // 120 mod 90
  EXPECT_DOUBLE_EQ(c.offsets_s[3], 0.0);   // 180 mod 90
}

TEST(ArterialConfigTest, UncoordinatedOffsetsInCycle) {
  util::Rng rng(1);
  const auto c = uncoordinated(10, 90.0, 45.0, 60.0, rng);
  for (double o : c.offsets_s) {
    EXPECT_GE(o, 0.0);
    EXPECT_LT(o, 90.0);
  }
}

TEST(ArterialSimulatorTest, GreenWaveAtFreeFlowNeverStopsAfterFirstLight) {
  // With perfect coordination and zero noise, a vehicle that clears the
  // first intersection on green sails through the rest.
  ArterialSimulator sim(quiet_corridor());
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto stops = sim.simulate_trip(rng);
    EXPECT_LE(stops.size(), 1u);  // at most the initial random-phase stop
  }
}

TEST(ArterialSimulatorTest, UncoordinatedStopsMore) {
  util::Rng cfg_rng(3);
  ArterialConfig un = uncoordinated(5, 90.0, 45.0, 60.0, cfg_rng);
  un.queue_delay_s = 0.0;
  un.link_sigma = 0.0;
  ArterialSimulator wave(quiet_corridor());
  ArterialSimulator random(un);

  util::Rng rng_a(4);
  util::Rng rng_b(4);
  std::size_t wave_stops = 0;
  std::size_t random_stops = 0;
  for (int i = 0; i < 3000; ++i) {
    wave_stops += wave.simulate_trip(rng_a).size();
    random_stops += random.simulate_trip(rng_b).size();
  }
  EXPECT_GT(random_stops, wave_stops * 2);
}

TEST(ArterialSimulatorTest, SignalWaitBoundedByRedPhase) {
  ArterialSimulator sim(quiet_corridor());
  util::Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    for (double s : sim.simulate_trip(rng)) {
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, 45.0 + 1e-9);  // red phase length, no queue delay
    }
  }
}

TEST(ArterialSimulatorTest, QueueDelayExtendsStops) {
  ArterialConfig with_queue = quiet_corridor();
  with_queue.queue_delay_s = 20.0;
  util::Rng cfg_rng(11);
  ArterialConfig un = uncoordinated(5, 90.0, 45.0, 60.0, cfg_rng);
  un.link_sigma = 0.0;
  un.queue_delay_s = 20.0;
  ArterialSimulator sim(un);
  util::Rng rng(6);
  double longest = 0.0;
  for (int i = 0; i < 3000; ++i) {
    for (double s : sim.simulate_trip(rng)) longest = std::max(longest, s);
  }
  EXPECT_GT(longest, 45.0);  // queue pushes waits past the bare red phase
}

TEST(ArterialSimulatorTest, VehicleTraceShape) {
  util::Rng cfg_rng(12);
  ArterialConfig un = uncoordinated(6, 90.0, 45.0, 45.0, cfg_rng);
  ArterialSimulator sim(un);
  util::Rng rng(7);
  const auto trace = sim.simulate_vehicle("veh-9", 14, rng);
  EXPECT_EQ(trace.vehicle_id, "veh-9");
  EXPECT_EQ(trace.area, "Arterial");
  EXPECT_GT(trace.num_stops(), 10u);  // 14 trips x 6 lights, ~half red
}

TEST(ArterialSimulatorTest, FleetDeterministicUnderSeed) {
  util::Rng cfg_rng(13);
  ArterialConfig un = uncoordinated(4, 90.0, 40.0, 50.0, cfg_rng);
  ArterialSimulator sim(un);
  util::Rng a(8);
  util::Rng b(8);
  const auto fa = sim.simulate_fleet(20, 10, a);
  const auto fb = sim.simulate_fleet(20, 10, b);
  ASSERT_EQ(fa.size(), 20u);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i].stops.size(), fb[i].stops.size());
    for (std::size_t j = 0; j < fa[i].stops.size(); ++j) {
      EXPECT_DOUBLE_EQ(fa[i].stops[j], fb[i].stops[j]);
    }
  }
}

TEST(ArterialSimulatorTest, InvalidConfigsThrow) {
  ArterialConfig c = quiet_corridor();
  c.offsets_s.clear();
  EXPECT_THROW(ArterialSimulator{c}, std::invalid_argument);
  c = quiet_corridor();
  c.signal.green_s = c.signal.cycle_s;
  EXPECT_THROW(ArterialSimulator{c}, std::invalid_argument);
  c = quiet_corridor();
  c.link_travel_s = 0.0;
  EXPECT_THROW(ArterialSimulator{c}, std::invalid_argument);
  EXPECT_THROW(green_wave(0, 90.0, 45.0, 60.0), std::invalid_argument);
}

TEST(ArterialSimulatorTest, TripCountValidation) {
  ArterialSimulator sim(quiet_corridor());
  util::Rng rng(9);
  EXPECT_THROW(sim.simulate_vehicle("v", 0, rng), std::invalid_argument);
  EXPECT_THROW(sim.simulate_fleet(0, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::traffic
