// lint-fixture: path=src/util/clock_impl.cpp
// src/util/ is the audited home for entropy and clock access, so the
// `determinism` rule must NOT fire here even on direct ::now() calls.
#include <chrono>

namespace idlered::util {

double monotonic_seconds_impl() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

}  // namespace idlered::util
