// lint-fixture: path=src/costmodel/multislope_example_good.cpp
// Good counterpart for the multi-line `deprecated-eval` matcher: a
// deprecated name ending a line must NOT fire when the next code line does
// not open a call, and identifiers that merely embed a wrapper name never
// match. (Fixtures are linted, not compiled.)

int example_good() {
  int offline_cost_total
      = 3;
  int my_evaluate_expected = 0;
  int evaluate_sampled_count = 1;
  return offline_cost_total + my_evaluate_expected + evaluate_sampled_count;
}
