// lint-fixture: path=bench/bench_example.cpp
// The `deprecated-eval` rule: calls to the legacy evaluator wrappers are
// findings anywhere outside src/sim/evaluator.{h,cpp}; the unified
// evaluate() entry point and annotated legacy coverage are fine.
// (Fixtures are linted, not compiled, so declarations are omitted — any
// mention of the wrapper names followed by `(` counts as a call.)

void example(const void* policy, const double* stops) {
  idlered::sim::evaluate(policy, stops, {});
  idlered::sim::evaluate_expected(policy, stops);         // LINT-BAD(deprecated-eval)
  idlered::sim::evaluate_sampled(policy, stops, 7);       // LINT-BAD(deprecated-eval)
  idlered::sim::offline_cost_total(stops, 28.0);          // LINT-BAD(deprecated-eval)
  // lint: allow(deprecated-eval): wrapper regression coverage
  idlered::sim::evaluate_expected(policy, stops);
}
