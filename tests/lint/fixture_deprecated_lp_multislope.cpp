// lint-fixture: path=src/costmodel/multislope_solver_example.cpp
// The extended `deprecated-lp` rule over the multislope costmodel files:
// the value-type lp::Problem, its lp::Constraint builder, and the
// one-argument value-type lp::solve overload are all findings; the arena
// workspace API stays clean. (Fixtures are linted, not compiled.)

void example(idlered::lp::Workspace& ws) {
  idlered::lp::Problem problem;                     // LINT-BAD(deprecated-lp)
  idlered::lp::Constraint row;                      // LINT-BAD(deprecated-lp)
  const auto sol = idlered::lp::solve(problem);     // LINT-BAD(deprecated-lp)
  auto stage = ws.stage(2, 3);
  const auto view = stage.view();
  const auto sol2 = idlered::lp::solve(ws, view);
  (void)row;
  (void)sol;
  (void)sol2;
}
