// lint-fixture: path=src/serve/feeder_impl.cpp
// src/serve/ is the streaming decision service: its producer-side entry
// points are inherently multi-threaded, so `thread-outside-engine` must
// NOT fire here (the pump itself still runs on the engine pool).
#include <thread>
#include <vector>

namespace idlered::serve {

void spawn_sources(int n, std::vector<std::thread>& out) {
  for (int i = 0; i < n; ++i) out.emplace_back([] {});
}

}  // namespace idlered::serve
