// lint-fixture: path=src/core/session_state.h
// Bad examples for the `unannotated-mutex` rule: raw std::mutex /
// std::condition_variable declarations in src/ outside the annotated
// wrapper's home. Each marked line must produce exactly one finding;
// the util::Mutex member and the allow-suppressed member must not.
#pragma once  // the fixture pretends to be a header; keep header-hygiene quiet

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace idlered::core {

class SessionState {
 public:
  void touch() {
    std::mutex local_m;                                   // LINT-BAD(unannotated-mutex)
    local_m.lock();
    local_m.unlock();
  }

 private:
  std::mutex m_;                                          // LINT-BAD(unannotated-mutex)
  std::condition_variable cv_;                            // LINT-BAD(unannotated-mutex)
  std::shared_mutex snapshot_m_;                          // LINT-BAD(unannotated-mutex)

  util::Mutex annotated_m_;
  util::CondVar annotated_cv_;
  // lint: allow(unannotated-mutex): handed to a C callback API that needs the native type
  std::mutex legacy_handle_m_;
};

}  // namespace idlered::core
