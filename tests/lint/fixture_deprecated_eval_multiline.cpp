// lint-fixture: path=src/costmodel/multislope_example.cpp
// Regression for the `deprecated-eval` multi-line false negative: a
// formatter may break the call between the callee name and its opening
// parenthesis. The finding lands on the line carrying the deprecated name.
// The path puts the fixture under src/costmodel/ so the multislope files
// are demonstrably in scope. (Fixtures are linted, not compiled.)

void example(const void* policy, const double* stops) {
  idlered::sim::evaluate_expected  // LINT-BAD(deprecated-eval)
      (policy, stops);
  idlered::sim::evaluate_sampled   // LINT-BAD(deprecated-eval)

      (policy, stops, 7);
  idlered::sim::evaluate(
      policy, stops, {});
  // lint: allow(deprecated-eval): wrapper regression coverage
  idlered::sim::offline_cost_total
      (stops, 28.0);
}
