// lint-fixture: path=src/core/float_example.cpp
// The `float-compare` rule: raw ==/!= against a floating-point literal in
// src/ needs an approved-comparison annotation. Integer comparisons and
// tolerance helpers are untouched.

namespace idlered::util {
bool approx_equal(double a, double b, double rtol, double atol);
}

namespace idlered::core {

double example(double off, double on, int n, double shape) {
  if (off == 0.0) return 1.0;                             // LINT-BAD(float-compare)
  if (on != 1.0) return 0.0;                              // LINT-BAD(float-compare)
  if (shape == 1e-3) return 2.0;                          // LINT-BAD(float-compare)
  if (0.5 == off) return 3.0;                             // LINT-BAD(float-compare)

  // lint: allow(float-compare): exact zero sentinel for this fixture
  if (off == 0.0) return 4.0;

  if (n == 0) return 5.0;        // integer compare: fine
  if (n != 100) return 6.0;      // integer compare: fine
  if (off <= 0.0) return 7.0;    // ordering with tolerance semantics: fine
  if (util::approx_equal(on, 1.0, 1e-9, 1e-12)) return 8.0;
  return on / off;
}

}  // namespace idlered::core
