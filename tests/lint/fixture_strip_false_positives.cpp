// lint-fixture: path=src/core/doc_strings.cpp
// Regression fixture for comment/string stripping false positives. None
// of these lines may produce a finding:
//   - banned tokens inside ordinary string literals,
//   - C++14 digit separators (1'000'000): the apostrophe must not open a
//     char-literal state, and an apostrophe in a trailing comment after
//     one must not leak the comment tail into the code channel,
//   - raw strings, including embedded double quotes.
#include <cstdint>

namespace idlered::core {

// A banned token inside a doc string: strings are stripped before rules.
const char* kDoc =
    "call std::chrono::steady_clock::now() only via util::monotonic_seconds";

// Historical false positive: `1'000` opened a char literal, the `'` in
// "don't" closed it, and `t call time() here` became code.
int separator_then_comment() {
  int n = 1'000;  // don't call time() here
  return n;
}

std::uint64_t digit_separators() {
  std::uint64_t big = 1'000'000;
  std::uint64_t hexed = 0x1234'5678'9abc'def0;
  return big + hexed;
}

// Raw string with an embedded quote: the naive stripper ended the string
// at the inner `"`, turning `time(nullptr)` into code.
const char* kRaw = R"x(say "time(nullptr)" or "rand()" out loud)x";

// Delimited raw string spanning lines, full of banned tokens.
const char* kRawDelimited = R"doc(
  std::random_device entropy;
  auto t = std::chrono::steady_clock::now();
  srand(42);
)doc";

int after_raw_strings() { return 7; }  // still linted normally

}  // namespace idlered::core
