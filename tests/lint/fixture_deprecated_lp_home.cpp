// lint-fixture: path=src/lp/simplex.cpp
// Home-file exemption for `deprecated-lp`: the compatibility wrapper's own
// definition uses the value type freely — that is where it lives.

namespace idlered::lp {

Solution solve(const Problem& problem) {
  lp::Problem copy = problem;  // no finding: home file
  return {};
}

}  // namespace idlered::lp
