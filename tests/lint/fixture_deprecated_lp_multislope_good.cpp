// lint-fixture: path=src/costmodel/multislope_policy_example.cpp
// Good counterpart for the extended `deprecated-lp` rule: arena-only usage
// in the multislope costmodel — batched staging, the two-argument arena
// solve, the batch descriptor type, and identifiers that merely embed
// "Problem" — must all stay clean. (Fixtures are linted, not compiled.)

void example_good(idlered::lp::Workspace& ws) {
  auto stage = ws.stage(2, 3);
  const auto view = stage.view();
  const auto sol = idlered::lp::solve(ws, view);
  idlered::core::LpBatchProblem batch{};
  int lp_problem_count = 0;
  idlered::lp::solve_batch(ws, view);
  (void)sol;
  (void)batch;
  (void)lp_problem_count;
}
