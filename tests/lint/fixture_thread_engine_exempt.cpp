// lint-fixture: path=src/engine/pool_impl.cpp
// src/engine/ owns parallelism, so `thread-outside-engine` must NOT fire
// here.
#include <thread>
#include <vector>

namespace idlered::engine {

void spawn_workers(int n, std::vector<std::thread>& out) {
  for (int i = 0; i < n; ++i) out.emplace_back([] {});
}

}  // namespace idlered::engine
