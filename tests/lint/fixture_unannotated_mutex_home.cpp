// lint-fixture: path=src/util/thread_annotations.h
// The annotated wrapper's own definition is the one exempt home for raw
// std::mutex / std::condition_variable: util::Mutex and util::CondVar
// wrap them here. No findings expected.
#pragma once  // the fixture pretends to be a header; keep header-hygiene quiet

#include <condition_variable>
#include <mutex>

namespace idlered::util {

class WrapperUnderTest {
 private:
  std::mutex m_;
  std::condition_variable cv_;
};

}  // namespace idlered::util
