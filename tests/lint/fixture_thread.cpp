// lint-fixture: path=src/sim/thread_example.cpp
// The `thread-outside-engine` rule: raw thread/async construction outside
// src/engine/ is a finding; engine pool usage is the sanctioned path.
#include <thread>

namespace idlered::engine {
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  void parallel_for(unsigned long n, void (*body)(unsigned long));
};
}  // namespace idlered::engine

namespace idlered::sim {

void bad_spawn() {
  std::thread t([] {});                                   // LINT-BAD(thread-outside-engine)
  t.join();
  auto f = std::async([] { return 1; });                  // LINT-BAD(thread-outside-engine)
  f.get();
}

void good_pool() {
  engine::ThreadPool pool(4);
  pool.parallel_for(16, nullptr);
}

// Member/identifier names mentioning thread are fine:
int thread_count = 0;
int hardware_threads() { return thread_count; }

}  // namespace idlered::sim
