// lint-fixture: path=src/obs/example.cpp
// src/obs/ (and src/util/) are the audited I/O homes: the exporters must
// write files and print confirmations, so `io-quarantine` does not apply.

#include <cstdio>
#include <iostream>

namespace idlered::obs {

void announce(const char* path, int events) {
  std::printf("wrote %s (%d events)\n", path, events);
  std::fprintf(stderr, "warning: short write on %s\n", path);
  std::cerr << "flush failed\n";
}

}  // namespace idlered::obs
