// lint-fixture: path=src/serve/pump.cpp
// Bad examples for the `lock-discipline` rule: blocking/IO calls while a
// util::LockGuard is held on the hot path (src/serve, src/engine,
// src/sim). The two-phase functions at the bottom — stage outside the
// lock, swap under it — must stay clean, as must the CondVar wait (that
// is what the lock is for) and the allow-suppressed sleep.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "util/thread_annotations.h"

namespace idlered::serve {

class Pump {
 public:
  void bad_sleep_under_lock() {
    util::LockGuard lock(m_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // LINT-BAD(lock-discipline)
  }

  void bad_file_io_under_lock() {
    util::LockGuard lock(m_);
    std::FILE* f = std::fopen("wal.log", "ab");           // LINT-BAD(lock-discipline)
    std::fwrite(&staged_, sizeof staged_, 1, f);          // LINT-BAD(lock-discipline)
    std::fclose(f);                                       // LINT-BAD(lock-discipline)
  }

  void bad_stream_under_lock() {
    util::LockGuard lock(m_);
    std::ofstream out("snapshot.tmp");                    // LINT-BAD(lock-discipline)
    out << staged_;
  }

  void bad_join_under_lock() {
    util::LockGuard lock(m_);
    worker_.join();                                       // LINT-BAD(lock-discipline)
  }

  void bad_nested_guard() {
    util::LockGuard outer(m_);
    util::LockGuard inner(other_m_);                      // LINT-BAD(lock-discipline)
  }

  void good_wait_under_lock() {
    util::LockGuard lock(m_);
    while (staged_ == 0) cv_.wait(m_);
  }

  void good_two_phase_io() {
    int staged;
    {
      util::LockGuard lock(m_);
      staged = staged_;
    }
    std::FILE* f = std::fopen("wal.log", "ab");
    std::fwrite(&staged, sizeof staged, 1, f);
    std::fclose(f);
  }

  void good_allowed_sleep() {
    util::LockGuard lock(m_);
    // lint: allow(lock-discipline): startup-only backoff, never on the pump path
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  util::Mutex m_;
  util::Mutex other_m_;
  util::CondVar cv_;
  int staged_ = 0;
  std::thread worker_;
};

}  // namespace idlered::serve
