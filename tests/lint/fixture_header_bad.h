// lint-fixture: path=src/core/bad_header.h -- missing guard anchors here: LINT-BAD(header-hygiene)
// Header with no include guard and a top-level using-namespace: both are
// `header-hygiene` findings (the missing-guard finding reports line 1).

#include <vector>

using namespace std;                                      // LINT-BAD(header-hygiene)

namespace idlered::core {
inline int bad_header_value() { return static_cast<int>(vector<int>{1}.size()); }
}  // namespace idlered::core
