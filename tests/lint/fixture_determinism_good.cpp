// lint-fixture: path=src/core/example_good.cpp
// Good examples for the `determinism` rule: seeded streams and the audited
// util/ clock entry point; names that merely contain "rand" or "time" must
// not trip the word-boundary patterns. No line here may produce a finding.

namespace idlered {
namespace util {
class Rng {
 public:
  explicit Rng(unsigned long long seed);
  double uniform();
};
double monotonic_seconds();
}  // namespace util

namespace core {

double good_seeded_draw() {
  util::Rng rng(42);  // explicit seed: reproducible by construction
  return rng.uniform();
}

double good_wall_time() { return util::monotonic_seconds(); }

// Identifiers containing the forbidden substrings are fine.
double make_n_rand(double b);
double total_stop_time(double y);
double n_rand_cost = make_n_rand(28.0);
double runtime = total_stop_time(3.0);

// Mentions inside comments and strings are stripped before matching:
// std::random_device, time(nullptr), rand(), steady_clock::now().
const char* kDoc = "never call rand() or time(0) in src/";

}  // namespace core
}  // namespace idlered
