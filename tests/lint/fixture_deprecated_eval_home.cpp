// lint-fixture: path=src/sim/evaluator.cpp
// The wrappers' own definitions must not trigger `deprecated-eval` —
// src/sim/evaluator.{h,cpp} are the allowlisted home.
// (Note for the float-compare scope: this pretends to be in src/, so exact
// comparisons here would need annotations; it has none.)

namespace idlered::sim {

struct CostTotals { double online, offline; };

CostTotals evaluate(const void* policy, const double* stops);

CostTotals evaluate_expected(const void* policy, const double* stops) {
  return evaluate(policy, stops);
}

double offline_cost_total(const double* stops, double b) {
  return b + stops[0];
}

}  // namespace idlered::sim
