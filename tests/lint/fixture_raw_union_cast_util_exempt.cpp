// lint-fixture: path=src/util/bits_extra.cpp
// src/util/ is where the audited punning helpers live, so the
// `raw-union-cast` rule must NOT fire here. No findings expected.
#include <bit>
#include <cstdint>
#include <cstring>

namespace idlered::util {

std::uint64_t helper_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&d);
  return bits ^ std::bit_cast<std::uint64_t>(d) ^ bytes[0];
}

}  // namespace idlered::util
