// lint-fixture: path=src/core/good_header.h
#pragma once

// A hygienic header: pragma once, no using-namespace. Namespace *aliases*
// and using-declarations inside a namespace block are allowed; only
// `using namespace` is banned (it leaks into every includer).

#include <vector>

namespace idlered::core {

namespace du = idlered::core;  // namespace alias: fine

inline int good_header_value() {
  return static_cast<int>(std::vector<int>{1}.size());
}

}  // namespace idlered::core
