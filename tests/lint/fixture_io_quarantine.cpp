// lint-fixture: path=src/core/example.cpp
// The `io-quarantine` rule: raw stdio/iostream writes are findings in src/
// outside src/obs/ and src/util/ — library code reports through the obs
// layer or returns values. snprintf (buffer formatting, no I/O) and
// lookalike identifiers must not trigger; annotated exceptions pass.

#include <cstdio>
#include <iostream>

namespace idlered::core {

int collect_outputs(char* buf, double v) {
  // Formatting into a caller's buffer is not I/O.
  return std::snprintf(buf, 32, "%f", v);
}

void report(double v) {
  std::printf("v = %f\n", v);                     // LINT-BAD(io-quarantine)
  printf("v = %f\n", v);                          // LINT-BAD(io-quarantine)
  std::fprintf(stderr, "v = %f\n", v);            // LINT-BAD(io-quarantine)
  std::puts("done");                              // LINT-BAD(io-quarantine)
  fputs("done\n", stderr);                        // LINT-BAD(io-quarantine)
  std::cout << "v = " << v << "\n";               // LINT-BAD(io-quarantine)
  std::cerr << "warning\n";                       // LINT-BAD(io-quarantine)
  std::clog << "note\n";                          // LINT-BAD(io-quarantine)
  // lint: allow(io-quarantine): contract-violation abort path, pre-obs
  std::fprintf(stderr, "fatal: %f\n", v);
}

}  // namespace idlered::core
