// lint-fixture: path=src/serve/codec.cpp
// Bad examples for the `raw-union-cast` rule: reinterpret_cast, memcpy
// punning, and raw std::bit_cast in src/ outside src/util/. The audited
// util::bit_cast helper is the sanctioned spelling and must stay clean.
#include <bit>
#include <cstdint>
#include <cstring>

#include "util/bits.h"

namespace idlered::serve {

std::uint64_t checksum_input(double d) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&d);  // LINT-BAD(raw-union-cast)
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);                    // LINT-BAD(raw-union-cast)
  auto raw = std::bit_cast<std::uint64_t>(d);             // LINT-BAD(raw-union-cast)
  return bits ^ raw ^ bytes[0];
}

std::uint64_t checksum_input_audited(double d) {
  return util::bit_cast<std::uint64_t>(d);
}

}  // namespace idlered::serve
