// lint-fixture: path=src/core/solver_example.cpp
// The `deprecated-lp` rule: the value-type lp::Problem path is a finding
// anywhere in src/ outside its home (src/lp/simplex.{h,cpp}); the arena
// workspace API is the supported path. (Fixtures are linted, not compiled.)

void example(idlered::lp::Workspace& ws) {
  idlered::lp::Problem problem;                       // LINT-BAD(deprecated-lp)
  auto stage = ws.stage(2, 3);
  const auto view = stage.view();
  const auto sol = idlered::lp::solve(ws, view);
  (void)sol;
  // lint: allow(deprecated-lp): differential cross-check of the wrapper
  idlered::lp::Problem legacy;
  (void)legacy;
}
