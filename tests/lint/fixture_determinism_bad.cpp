// lint-fixture: path=src/core/example.cpp
// Bad examples for the `determinism` rule: ambient entropy/clock reads in
// src/ outside util/. Each marked line must produce exactly one finding.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace idlered::core {

unsigned bad_entropy() {
  std::random_device rd;                                  // LINT-BAD(determinism)
  return rd();
}

int bad_rand() {
  return rand();                                          // LINT-BAD(determinism)
}

long bad_time() {
  return time(nullptr);                                   // LINT-BAD(determinism)
}

double bad_clock() {
  auto t = std::chrono::steady_clock::now();              // LINT-BAD(determinism)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace idlered::core
