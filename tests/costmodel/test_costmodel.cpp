#include <cmath>

#include <gtest/gtest.h>

#include "costmodel/break_even.h"
#include "costmodel/emissions.h"
#include "costmodel/fuel.h"
#include "costmodel/wear.h"

namespace idlered::costmodel {
namespace {

// ------------------------------------------------------------------- fuel

TEST(FuelTest, Equation45Regression) {
  // fuel_{L/h} = 0.3644 D + 0.5188 (paper eq. 45).
  EXPECT_NEAR(idle_fuel_l_per_h(2.5), 0.3644 * 2.5 + 0.5188, 1e-12);
  EXPECT_NEAR(idle_fuel_l_per_h(1.0), 0.8832, 1e-12);
}

TEST(FuelTest, MeasurementOverridesRegression) {
  EngineSpec e;
  e.measured_idle_fuel_cc_per_s = 0.279;  // Argonne's Ford Fusion
  EXPECT_DOUBLE_EQ(idle_fuel_cc_per_s(e), 0.279);
}

TEST(FuelTest, RegressionPathWhenNoMeasurement) {
  EngineSpec e;
  e.displacement_liters = 2.5;
  e.measured_idle_fuel_cc_per_s = 0.0;
  // (0.3644*2.5 + 0.5188) L/h = 1.4298 L/h = 0.3972 cc/s.
  EXPECT_NEAR(idle_fuel_cc_per_s(e), 1.4298 * 1000.0 / 3600.0, 1e-9);
}

TEST(FuelTest, PaperIdlingCostWorkedExample) {
  // 0.279 cc/s at $3.50/gallon -> ~0.0258 cents/s (paper, Appendix C.1).
  EngineSpec e;
  FuelPricing p;
  EXPECT_NEAR(idling_cost_cents_per_s(e, p), 0.0258, 0.0001);
}

TEST(FuelTest, InvalidInputsThrow) {
  EXPECT_THROW(idle_fuel_l_per_h(0.0), std::invalid_argument);
  EngineSpec e;
  FuelPricing p;
  p.usd_per_gallon = 0.0;
  EXPECT_THROW(idling_cost_cents_per_s(e, p), std::invalid_argument);
}

// ------------------------------------------------------------------- wear

TEST(WearTest, StrengthenedStarterIsFree) {
  StarterSpec s;
  s.strengthened = true;
  EXPECT_DOUBLE_EQ(starter_cost_cents_per_start(s), 0.0);
}

TEST(WearTest, StarterCostInPaperRange) {
  // Paper: 0.5 - 4 cents/start across the published parameter ranges.
  StarterSpec cheap;
  cheap.replacement_usd = 85.0;
  cheap.labor_usd = 115.0;
  cheap.starts_per_replacement = 40000.0;
  EXPECT_NEAR(starter_cost_cents_per_start(cheap), 0.5, 1e-12);

  StarterSpec pricey;
  pricey.replacement_usd = 400.0;
  pricey.labor_usd = 225.0;
  pricey.starts_per_replacement = 20000.0;
  EXPECT_NEAR(starter_cost_cents_per_start(pricey), 3.125, 1e-12);
}

TEST(WearTest, BatteryCostInPaperRange) {
  // Paper: 0.4841 - 0.9713 cents/start for a $230 battery, 2-4 years,
  // 32.43 stops/day.
  BatterySpec best;
  best.warranty_years = 4.0;
  const double low = battery_cost_cents_per_start(best);
  BatterySpec worst;
  worst.warranty_years = 2.0;
  const double high = battery_cost_cents_per_start(worst);
  EXPECT_NEAR(low, 0.4858, 0.01);
  EXPECT_NEAR(high, 0.9713, 0.01);
}

TEST(WearTest, InvalidInputsThrow) {
  StarterSpec s;
  s.starts_per_replacement = 0.0;
  EXPECT_THROW(starter_cost_cents_per_start(s), std::invalid_argument);
  BatterySpec b;
  b.warranty_years = 0.0;
  EXPECT_THROW(battery_cost_cents_per_start(b), std::invalid_argument);
}

// -------------------------------------------------------------- emissions

TEST(EmissionsTest, PaperNoxWorkedExample) {
  // 6 mg NOx/restart at ~580 cents/kg -> ~0.0035 cents/restart.
  EmissionRates r;
  EmissionPricing p;
  EXPECT_NEAR(emission_cost_cents_per_restart(r, p), 0.00348, 0.0005);
}

TEST(EmissionsTest, IdlingEmissionCostTiny) {
  EmissionRates r;
  EmissionPricing p;
  EXPECT_LT(emission_cost_cents_per_idle_s(r, p), 1e-4);
}

TEST(EmissionsTest, UnpricedPollutantsContributeNothing) {
  EmissionRates r;
  EmissionPricing p;
  p.nox_cents_per_kg = 0.0;
  EXPECT_DOUBLE_EQ(emission_cost_cents_per_restart(r, p), 0.0);
}

TEST(EmissionsTest, CoDominatesByMassWhenPriced) {
  EmissionRates r;
  EmissionPricing p;
  p.thc_cents_per_kg = p.nox_cents_per_kg = p.co_cents_per_kg = 100.0;
  // CO (1253 mg) >> THC (44) + NOx (6) per restart.
  const double total = emission_cost_cents_per_restart(r, p);
  EmissionPricing co_only;
  co_only.nox_cents_per_kg = 0.0;
  co_only.co_cents_per_kg = 100.0;
  EXPECT_GT(emission_cost_cents_per_restart(r, co_only) / total, 0.9);
}

// -------------------------------------------------------------- break-even

TEST(BreakEvenTest, SsvNearPaperValue) {
  // Paper: "minimum break-even interval B = 28 seconds for SSV".
  // Our decomposition: 10 (fuel) + 0 (starter) + ~18.8 (battery) + ~0.1
  // (NOx) ~= 28.9 s. Allow the rounding band around the paper's figure.
  const auto b = compute_break_even(ssv_vehicle());
  EXPECT_NEAR(b.break_even_s, 28.0, 1.5);
  EXPECT_DOUBLE_EQ(b.starter_s, 0.0);
  EXPECT_NEAR(b.fuel_s, 10.0, 0.1);
}

TEST(BreakEvenTest, ConventionalNearPaperValue) {
  // Paper: "47 seconds otherwise". Ours: 10 + ~19.4 + ~18.8 + ~0.1 ~= 48.3.
  const auto b = compute_break_even(conventional_vehicle());
  EXPECT_NEAR(b.break_even_s, 47.0, 2.0);
  EXPECT_GT(b.starter_s, 15.0);
}

TEST(BreakEvenTest, ComponentsSumToTotal) {
  const auto b = compute_break_even(conventional_vehicle());
  EXPECT_NEAR(b.fuel_s + b.starter_s + b.battery_s + b.emissions_s,
              b.break_even_s, 1e-9);
}

TEST(BreakEvenTest, RestartCostConsistent) {
  const auto b = compute_break_even(ssv_vehicle());
  EXPECT_NEAR(b.restart_cost_cents,
              b.break_even_s * b.idling_cost_cents_per_s, 1e-9);
}

TEST(BreakEvenTest, SsvCheaperThanConventional) {
  const auto ssv = compute_break_even(ssv_vehicle());
  const auto conv = compute_break_even(conventional_vehicle());
  EXPECT_LT(ssv.break_even_s, conv.break_even_s);
}

TEST(BreakEvenTest, HigherFuelPriceLowersWearShare) {
  // Pricier fuel makes idling costlier, so wear-dominated B shrinks.
  VehicleConfig v = conventional_vehicle();
  const double base = compute_break_even(v).break_even_s;
  v.fuel.usd_per_gallon = 7.0;
  EXPECT_LT(compute_break_even(v).break_even_s, base);
}

TEST(BreakEvenTest, DescribeMentionsAllComponents) {
  const std::string text = compute_break_even(ssv_vehicle()).describe();
  EXPECT_NE(text.find("restart fuel"), std::string::npos);
  EXPECT_NE(text.find("battery wear"), std::string::npos);
  EXPECT_NE(text.find("break-even interval"), std::string::npos);
}

TEST(BreakEvenTest, PaperConstantsExposed) {
  EXPECT_DOUBLE_EQ(kPaperBreakEvenSsv, 28.0);
  EXPECT_DOUBLE_EQ(kPaperBreakEvenConventional, 47.0);
}

}  // namespace
}  // namespace idlered::costmodel

#include "costmodel/fleet_economics.h"

namespace idlered::costmodel {
namespace {

// ------------------------------------------------------- fleet economics

TEST(FleetEconomicsTest, PaperHeadlineBand) {
  // The Introduction's "more than 6 billion gallons, more than $20
  // billion" must fall inside the 13%-23% idle-fraction band.
  NationalFleetModel lo;
  lo.idle_fraction = 0.13;
  NationalFleetModel hi;
  hi.idle_fraction = 0.23;
  const auto bill_lo = national_idling_bill(lo);
  const auto bill_hi = national_idling_bill(hi);
  EXPECT_LT(bill_lo.fuel_gallons_per_year, 6.0e9);
  EXPECT_GT(bill_hi.fuel_gallons_per_year, 6.0e9);
  EXPECT_GT(bill_hi.usd_per_year, 20.0e9);
}

TEST(FleetEconomicsTest, LinearInFleetSize) {
  NationalFleetModel base;
  NationalFleetModel doubled = base;
  doubled.vehicles *= 2.0;
  EXPECT_NEAR(national_idling_bill(doubled).fuel_gallons_per_year,
              2.0 * national_idling_bill(base).fuel_gallons_per_year, 1.0);
}

TEST(FleetEconomicsTest, Co2TracksFuel) {
  const auto bill = national_idling_bill(NationalFleetModel{});
  EXPECT_NEAR(bill.co2_tonnes_per_year,
              bill.fuel_gallons_per_year * 8.74 / 1000.0, 1.0);
}

TEST(FleetEconomicsTest, RecoverableFraction) {
  EXPECT_DOUBLE_EQ(recoverable_fraction(30.0, 100.0), 0.7);
  EXPECT_DOUBLE_EQ(recoverable_fraction(100.0, 100.0), 0.0);
  EXPECT_LT(recoverable_fraction(120.0, 100.0), 0.0);  // worse than NEV
  EXPECT_THROW(recoverable_fraction(1.0, 0.0), std::invalid_argument);
}

TEST(FleetEconomicsTest, ScaleBill) {
  const auto bill = national_idling_bill(NationalFleetModel{});
  const auto half = scale_bill(bill, 0.5);
  EXPECT_NEAR(half.usd_per_year, 0.5 * bill.usd_per_year, 1e-6);
  EXPECT_NEAR(half.fuel_gallons_per_year, 0.5 * bill.fuel_gallons_per_year,
              1e-6);
}

TEST(FleetEconomicsTest, InvalidModelThrows) {
  NationalFleetModel m;
  m.vehicles = 0.0;
  EXPECT_THROW(national_idling_bill(m), std::invalid_argument);
  m = NationalFleetModel{};
  m.idle_fraction = 1.5;
  EXPECT_THROW(national_idling_bill(m), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::costmodel
