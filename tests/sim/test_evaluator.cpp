#include "sim/evaluator.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::sim {
namespace {

constexpr double kB = 28.0;

TEST(CostTotalsTest, CrDefinition) {
  CostTotals t;
  t.online = 50.0;
  t.offline = 40.0;
  t.num_stops = 3;
  EXPECT_DOUBLE_EQ(t.cr(), 1.25);
}

TEST(CostTotalsTest, EmptyTraceIsVacuouslyOne) {
  EXPECT_DOUBLE_EQ(CostTotals{}.cr(), 1.0);
}

TEST(CostTotalsTest, ZeroOfflineWithPositiveOnlineIsInfinite) {
  CostTotals t;
  t.online = 5.0;
  t.offline = 0.0;
  t.num_stops = 1;
  EXPECT_TRUE(std::isinf(t.cr()));
}

TEST(EvaluateExpectedTest, DetOnKnownTrace) {
  const std::vector<double> stops{10.0, 30.0, 100.0};
  const auto t = evaluate(*core::make_det(kB), stops);
  // Online: 10 + 2B + 2B = 122; offline: 10 + B + B = 66.
  EXPECT_DOUBLE_EQ(t.online, 10.0 + 4.0 * kB);
  EXPECT_DOUBLE_EQ(t.offline, 10.0 + 2.0 * kB);
  EXPECT_EQ(t.num_stops, 3u);
}

TEST(EvaluateExpectedTest, ToiOnKnownTrace) {
  const std::vector<double> stops{1.0, 2.0, 300.0};
  const auto t = evaluate(*core::make_toi(kB), stops);
  EXPECT_DOUBLE_EQ(t.online, 3.0 * kB);
  EXPECT_DOUBLE_EQ(t.offline, 3.0 + kB);
}

TEST(EvaluateExpectedTest, NRandCrIsExactlyTheBound) {
  // Because N-Rand equalizes, its trace CR is e/(e-1) on any trace.
  util::Rng rng(3);
  std::vector<double> stops;
  for (int i = 0; i < 200; ++i) stops.push_back(rng.exponential(25.0));
  const auto t = evaluate(*core::make_n_rand(kB), stops);
  EXPECT_NEAR(t.cr(), util::kEOverEMinus1, 1e-9);
}

TEST(EvaluateSampledTest, DeterministicPolicyMatchesExpected) {
  const std::vector<double> stops{5.0, 29.0, 60.0, 3.0};
  util::Rng rng(4);
  const auto sampled = evaluate(*core::make_det(kB), stops,
                                {EvalMode::kSampled, &rng});
  const auto expected = evaluate(*core::make_det(kB), stops);
  EXPECT_DOUBLE_EQ(sampled.online, expected.online);
  EXPECT_DOUBLE_EQ(sampled.offline, expected.offline);
}

TEST(EvaluateSampledTest, NevNeverPaysRestart) {
  const std::vector<double> stops{5.0, 500.0};
  util::Rng rng(5);
  const auto t = evaluate(*core::make_nev(kB), stops,
                          {EvalMode::kSampled, &rng});
  EXPECT_DOUBLE_EQ(t.online, 505.0);
}

TEST(EvaluateSampledTest, SampledModeWithoutRngThrows) {
  const std::vector<double> stops{5.0};
  EXPECT_THROW(
      evaluate(*core::make_det(kB), stops, {EvalMode::kSampled, nullptr}),
      std::invalid_argument);
}

TEST(EvaluateSampledTest, ConvergesToExpectedForRandomized) {
  // Law of large numbers: on a long trace the sampled CR approaches the
  // expected-mode CR (ablation A4's claim).
  util::Rng trace_rng(6);
  std::vector<double> stops;
  for (int i = 0; i < 30000; ++i) stops.push_back(trace_rng.exponential(30.0));
  const auto policy = core::make_n_rand(kB);
  util::Rng eval_rng(7);
  const auto sampled = evaluate(*policy, stops,
                                {EvalMode::kSampled, &eval_rng});
  const auto expected = evaluate(*policy, stops);
  EXPECT_NEAR(sampled.cr(), expected.cr(), 0.02);
}

// Regression coverage for the deprecated thin wrappers: they must remain
// exact aliases of evaluate() until they are removed. This is the one test
// file allowed to call them (the repo-wide `deprecated-eval` lint rule
// blocks new callers everywhere else).

TEST(DeprecatedWrappersTest, ExpectedWrapperAliasesEvaluate) {
  const std::vector<double> stops{10.0, 30.0, 100.0};
  const auto policy = core::make_det(kB);
  // lint: allow(deprecated-eval): wrapper regression coverage
  EXPECT_EQ(evaluate_expected(*policy, stops), evaluate(*policy, stops));
}

TEST(DeprecatedWrappersTest, SampledWrapperAliasesEvaluate) {
  const std::vector<double> stops{5.0, 29.0, 60.0};
  const auto policy = core::make_n_rand(kB);
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  // lint: allow(deprecated-eval): wrapper regression coverage
  EXPECT_EQ(evaluate_sampled(*policy, stops, rng_a),
            evaluate(*policy, stops, {EvalMode::kSampled, &rng_b}));
}

TEST(DeprecatedWrappersTest, OfflineTotalAliasesEvaluateOffline) {
  const std::vector<double> stops{10.0, 30.0, 100.0};
  // lint: allow(deprecated-eval): wrapper regression coverage
  EXPECT_DOUBLE_EQ(offline_cost_total(stops, kB), 10.0 + kB + kB);
  // lint: allow(deprecated-eval): wrapper regression coverage
  EXPECT_DOUBLE_EQ(offline_cost_total(stops, kB),
                   evaluate(*core::make_det(kB), stops).offline);
}

}  // namespace
}  // namespace idlered::sim
