#include "sim/savings.h"

#include <gtest/gtest.h>

#include "core/policies.h"

namespace idlered::sim {
namespace {

costmodel::VehicleConfig fusion() { return costmodel::ssv_vehicle(); }

TEST(RealCostTest, UnitConversions) {
  // 1000 idle-seconds at 0.279 cc/s = 0.279 L; at 0.0258 cents/s = $0.258.
  const auto r = to_real_cost(1000.0, fusion());
  EXPECT_NEAR(r.fuel_liters, 0.279, 1e-9);
  EXPECT_NEAR(r.usd, 0.258, 0.001);
  EXPECT_NEAR(r.co2_kg, 0.279 * kCo2KgPerLiterGasoline, 1e-9);
  EXPECT_DOUBLE_EQ(r.idle_second_equivalents, 1000.0);
}

TEST(RealCostTest, ZeroIsZero) {
  const auto r = to_real_cost(0.0, fusion());
  EXPECT_DOUBLE_EQ(r.fuel_liters, 0.0);
  EXPECT_DOUBLE_EQ(r.usd, 0.0);
}

TEST(SavingsTest, PolicyVsBaseline) {
  CostTotals coa;
  coa.online = 5000.0;
  CostTotals nev;
  nev.online = 9000.0;
  const auto s = savings(coa, nev, fusion());
  EXPECT_NEAR(s.idle_second_equivalents, 4000.0, 1e-12);
  EXPECT_GT(s.usd, 0.0);
}

TEST(SavingsTest, NegativeWhenPolicyWorse) {
  CostTotals worse;
  worse.online = 9000.0;
  CostTotals better;
  better.online = 5000.0;
  EXPECT_LT(savings(worse, better, fusion()).fuel_liters, 0.0);
}

TEST(ProjectionTest, FleetYearScaling) {
  RealCost per_week;
  per_week.fuel_liters = 1.0;
  per_week.usd = 2.0;
  per_week.co2_kg = 2.31;
  per_week.idle_second_equivalents = 3600.0;
  // One week of one vehicle -> 1182 vehicles for a year.
  const auto fleet = project_fleet_year(per_week, 7.0, 1182.0);
  const double factor = 365.0 / 7.0 * 1182.0;
  EXPECT_NEAR(fleet.fuel_liters, factor, 1e-6);
  EXPECT_NEAR(fleet.usd, 2.0 * factor, 1e-6);
}

TEST(ProjectionTest, InvalidArgumentsThrow) {
  RealCost r;
  EXPECT_THROW(project_fleet_year(r, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(project_fleet_year(r, 7.0, 0.0), std::invalid_argument);
}

TEST(EndToEndSavingsTest, CoaSavesFuelVsNevOnLongStops) {
  // A trace dominated by long stops: COA (TOI-like) vs NEV.
  std::vector<double> stops(50, 300.0);
  const auto b = costmodel::compute_break_even(fusion());
  const auto coa = evaluate(*core::make_toi(b.break_even_s), stops);
  const auto nev = evaluate(*core::make_nev(b.break_even_s), stops);
  const auto s = savings(coa, nev, fusion());
  // NEV burns 300 s per stop; TOI ~29 s equivalent: ~13500 s saved.
  EXPECT_GT(s.idle_second_equivalents, 10000.0);
  EXPECT_GT(s.fuel_liters, 2.5);
  EXPECT_GT(s.co2_kg, 6.0);
}

}  // namespace
}  // namespace idlered::sim
