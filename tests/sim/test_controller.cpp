#include "sim/controller.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/policies.h"
#include "core/proposed.h"
#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::sim {
namespace {

AdaptiveController::Config config(double b = 28.0, std::size_t warmup = 10,
                                  double lambda = 1.0) {
  AdaptiveController::Config c;
  c.break_even = b;
  c.warmup_stops = warmup;
  c.decay_lambda = lambda;
  return c;
}

TEST(AdaptiveControllerTest, StartsWithNRandFallback) {
  AdaptiveController ctrl(config());
  EXPECT_EQ(ctrl.current_policy().name(), "N-Rand");
}

TEST(AdaptiveControllerTest, SwitchesToCoaAfterWarmup) {
  AdaptiveController ctrl(config(28.0, 5));
  for (int i = 0; i < 4; ++i) ctrl.process_stop_expected(10.0);
  EXPECT_EQ(ctrl.current_policy().name(), "N-Rand");
  ctrl.process_stop_expected(10.0);
  EXPECT_EQ(ctrl.current_policy().name(), "COA");
}

TEST(AdaptiveControllerTest, DecisionPrecedesObservation) {
  // The cost charged for a stop must come from the policy chosen *before*
  // that stop was observed — strict online causality. With warmup 1, the
  // first stop is always priced by N-Rand regardless of its length.
  AdaptiveController ctrl(config(28.0, 1));
  const double paid = ctrl.process_stop_expected(1000.0);
  core::NRandPolicy nrand(28.0);
  EXPECT_DOUBLE_EQ(paid, nrand.expected_cost(1000.0));
}

TEST(AdaptiveControllerTest, TotalsAccumulate) {
  AdaptiveController ctrl(config());
  ctrl.process_stop_expected(10.0);
  ctrl.process_stop_expected(50.0);
  EXPECT_EQ(ctrl.totals().num_stops, 2u);
  EXPECT_DOUBLE_EQ(ctrl.totals().offline, 10.0 + 28.0);
  EXPECT_GT(ctrl.totals().online, 0.0);
}

TEST(AdaptiveControllerTest, ConvergesNearOfflineOnShortStopWorld) {
  // All stops short: COA learns q ~ 0 and switches to DET, which is
  // offline-optimal for short stops; long-run CR tends to ~1.
  util::Rng rng(8);
  AdaptiveController ctrl(config(28.0, 20));
  for (int i = 0; i < 5000; ++i) {
    ctrl.process_stop_expected(rng.uniform(1.0, 20.0));
  }
  EXPECT_LT(ctrl.totals().cr(), 1.1);
  EXPECT_EQ(ctrl.current_policy().name(), "COA");
}

TEST(AdaptiveControllerTest, BeatsNRandBoundOnStationaryTraffic) {
  // Exponential(60) traffic puts COA in the TOI region (q_B+ ~ 0.63), whose
  // realized CR (~1.25) clearly beats the N-Rand fallback's e/(e-1).
  dist::Exponential law(60.0);
  util::Rng rng(9);
  AdaptiveController ctrl(config(28.0, 30));
  for (int i = 0; i < 20000; ++i) {
    ctrl.process_stop_expected(law.sample(rng));
  }
  EXPECT_LT(ctrl.totals().cr(), 1.45);
}

TEST(AdaptiveControllerTest, SampledModeAccumulates) {
  util::Rng rng(10);
  AdaptiveController ctrl(config(28.0, 5));
  for (int i = 0; i < 100; ++i) {
    ctrl.process_stop_sampled(rng.exponential(20.0), rng);
  }
  EXPECT_EQ(ctrl.totals().num_stops, 100u);
  EXPECT_GT(ctrl.totals().online, 0.0);
  EXPECT_GT(ctrl.totals().offline, 0.0);
}

TEST(AdaptiveControllerTest, ConstructorValidatesConfig) {
  EXPECT_THROW(AdaptiveController(config(0.0)), std::invalid_argument);
  EXPECT_THROW(AdaptiveController(config(-5.0)), std::invalid_argument);
  EXPECT_THROW(AdaptiveController(config(28.0, 0)), std::invalid_argument);
  EXPECT_THROW(AdaptiveController(config(28.0, 10, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveController(config(28.0, 10, 1.01)),
               std::invalid_argument);
  EXPECT_NO_THROW(AdaptiveController(config(28.0, 1, 1.0)));
}

TEST(AdaptiveControllerTest, HostileStopLengthsThrowWithoutSideEffects) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  AdaptiveController ctrl(config(28.0, 2));
  ctrl.process_stop_expected(10.0);
  util::Rng rng(12);
  for (double v : {kNan, kInf, -kInf, -1.0}) {
    EXPECT_THROW(ctrl.process_stop_expected(v), std::invalid_argument);
    EXPECT_THROW(ctrl.process_stop_sampled(v, rng), std::invalid_argument);
  }
  // Rejected stops neither charge cost nor advance the warm-up counter.
  EXPECT_EQ(ctrl.totals().num_stops, 1u);
  EXPECT_EQ(ctrl.stops_seen(), 1u);
  EXPECT_EQ(ctrl.current_policy().name(), "N-Rand");
}

TEST(AdaptiveControllerTest, ForgettingAdaptsToRegimeShift) {
  // After a calm -> jammed shift, a forgetting controller should end up on
  // a strategy suited to long stops (TOI-like or N-Rand), not DET.
  util::Rng rng(11);
  AdaptiveController ctrl(config(28.0, 10, 0.97));
  for (int i = 0; i < 1000; ++i)
    ctrl.process_stop_expected(rng.uniform(2.0, 15.0));
  for (int i = 0; i < 500; ++i)
    ctrl.process_stop_expected(rng.exponential(300.0) + 28.0);
  const auto& policy =
      dynamic_cast<const core::ProposedPolicy&>(ctrl.current_policy());
  EXPECT_NE(policy.choice().strategy, core::Strategy::kDet);
  EXPECT_GT(policy.stats().q_b_plus, 0.5);
}

}  // namespace
}  // namespace idlered::sim
