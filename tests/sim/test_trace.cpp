#include "sim/trace.h"

#include <gtest/gtest.h>

namespace idlered::sim {
namespace {

Fleet small_fleet() {
  return Fleet{
      StopTrace{"veh-1", "Chicago", {10.0, 20.5, 100.0}},
      StopTrace{"veh-2", "Atlanta", {5.0}},
  };
}

TEST(StopTraceTest, Totals) {
  const StopTrace t{"v", "a", {10.0, 20.0, 30.0}};
  EXPECT_EQ(t.num_stops(), 3u);
  EXPECT_DOUBLE_EQ(t.total_stop_time(), 60.0);
  EXPECT_DOUBLE_EQ(t.mean_stop_length(), 20.0);
}

TEST(StopTraceTest, MeanOfEmptyThrows) {
  const StopTrace t{"v", "a", {}};
  EXPECT_THROW(t.mean_stop_length(), std::logic_error);
}

TEST(PooledStopsTest, FlattensAllVehicles) {
  const auto pooled = pooled_stops(small_fleet());
  ASSERT_EQ(pooled.size(), 4u);
  EXPECT_DOUBLE_EQ(pooled[0], 10.0);
  EXPECT_DOUBLE_EQ(pooled[3], 5.0);
}

TEST(FleetCsvTest, RoundTrip) {
  const Fleet original = small_fleet();
  const Fleet parsed = fleet_from_csv(fleet_to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].vehicle_id, original[i].vehicle_id);
    EXPECT_EQ(parsed[i].area, original[i].area);
    ASSERT_EQ(parsed[i].stops.size(), original[i].stops.size());
    for (std::size_t j = 0; j < original[i].stops.size(); ++j) {
      EXPECT_DOUBLE_EQ(parsed[i].stops[j], original[i].stops[j]);
    }
  }
}

TEST(FleetCsvTest, HeaderPresent) {
  const std::string csv = fleet_to_csv(small_fleet());
  EXPECT_EQ(csv.rfind("vehicle_id,area,stop_s\n", 0), 0u);
}

TEST(FleetCsvTest, MissingColumnsRejected) {
  EXPECT_THROW(fleet_from_csv("a,b\n1,2\n"), std::runtime_error);
}

TEST(FleetCsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fleet_roundtrip.csv";
  write_fleet_csv(small_fleet(), path);
  const Fleet parsed = read_fleet_csv(path);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1].vehicle_id, "veh-2");
}

TEST(FleetCsvTest, MissingFileThrows) {
  EXPECT_THROW(read_fleet_csv("/nonexistent/fleet.csv"), std::runtime_error);
}

}  // namespace
}  // namespace idlered::sim
