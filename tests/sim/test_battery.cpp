#include "sim/battery.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "util/random.h"

namespace idlered::sim {
namespace {

constexpr double kB = 28.0;

BatteryModel small_battery() {
  BatteryModel b;
  b.capacity_wh = 100.0;
  b.accessory_draw_w = 360.0;  // 0.1 Wh per second engine-off
  b.recharge_w = 720.0;        // 0.2 Wh per second driving
  b.restart_pulse_wh = 1.0;
  b.min_soc = 0.2;
  b.initial_soc = 0.5;
  return b;
}

TEST(BatteryControllerTest, ToiDrainsBatteryOnLongStops) {
  SocConstrainedController ctl(core::make_toi(kB), small_battery());
  util::Rng rng(1);
  const double soc0 = ctl.soc();
  ctl.process_stop(300.0, 0.0, rng);  // 5 min engine-off, no recharge
  EXPECT_LT(ctl.soc(), soc0);
}

TEST(BatteryControllerTest, DrivingRecharges) {
  SocConstrainedController ctl(core::make_toi(kB), small_battery());
  util::Rng rng(2);
  ctl.process_stop(100.0, 0.0, rng);
  const double drained = ctl.soc();
  ctl.process_stop(0.5, 600.0, rng);  // short stop, 10 min drive
  EXPECT_GT(ctl.soc(), drained);
  EXPECT_LE(ctl.soc(), 1.0);
}

TEST(BatteryControllerTest, FloorForcesIdling) {
  BatteryModel b = small_battery();
  b.initial_soc = 0.19;  // below the floor from the start
  SocConstrainedController ctl(core::make_toi(kB), b);
  util::Rng rng(3);
  const double cost = ctl.process_stop(120.0, 0.0, rng);
  EXPECT_DOUBLE_EQ(cost, 120.0);  // had to idle the whole stop
  EXPECT_EQ(ctl.forced_idle_stops(), 1u);
}

TEST(BatteryControllerTest, MidStopAbortWhenFloorHit) {
  // SOC 0.5, floor 0.2 -> 30 Wh available -> 300 s of accessories. A 1000 s
  // stop under TOI must abort the shut-off and idle the remaining 700 s.
  SocConstrainedController ctl(core::make_toi(kB), small_battery());
  util::Rng rng(4);
  const double cost = ctl.process_stop(1000.0, 0.0, rng);
  EXPECT_NEAR(cost, kB + 700.0, 1.0);
  EXPECT_EQ(ctl.aborted_shutoffs(), 1u);
  EXPECT_NEAR(ctl.soc(), 0.2 - 1.0 / 100.0, 1e-9);  // floor minus crank pulse
}

TEST(BatteryControllerTest, UnconstrainedMatchesPlainEvaluation) {
  // A huge battery never interferes: costs equal sampled-mode evaluate()
  // with the same policy and RNG stream.
  BatteryModel huge;
  huge.capacity_wh = 1e9;
  huge.min_soc = 0.0;
  huge.initial_soc = 1.0;
  const auto policy = core::make_det(kB);
  SocConstrainedController ctl(policy, huge);
  std::vector<double> stops{5.0, 40.0, 12.0, 300.0, 28.0};
  util::Rng rng_a(5);
  for (double y : stops) ctl.process_stop(y, 60.0, rng_a);
  util::Rng rng_b(5);
  const auto plain = evaluate(*policy, stops, {EvalMode::kSampled, &rng_b});
  EXPECT_NEAR(ctl.totals().online, plain.online, 1e-9);
  EXPECT_NEAR(ctl.totals().offline, plain.offline, 1e-9);
  EXPECT_EQ(ctl.forced_idle_stops(), 0u);
  EXPECT_EQ(ctl.aborted_shutoffs(), 0u);
}

TEST(BatteryControllerTest, NevNeverTouchesBattery) {
  SocConstrainedController ctl(core::make_nev(kB), small_battery());
  util::Rng rng(6);
  ctl.process_stop(500.0, 0.0, rng);
  EXPECT_DOUBLE_EQ(ctl.soc(), 0.5);  // engine never shut off
  EXPECT_DOUBLE_EQ(ctl.totals().online, 500.0);
}

TEST(BatteryControllerTest, ConstrainedCostsAtLeastUnconstrained) {
  // Battery limits can only hurt: compare a tight battery against a huge
  // one over the same stop stream and RNG draws (deterministic policy).
  const auto policy = core::make_toi(kB);
  BatteryModel huge;
  huge.capacity_wh = 1e9;
  huge.initial_soc = 1.0;
  huge.min_soc = 0.0;
  SocConstrainedController tight(policy, small_battery());
  SocConstrainedController loose(policy, huge);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  for (int i = 0; i < 50; ++i) {
    const double y = 60.0 + 10.0 * (i % 7);
    tight.process_stop(y, 30.0, rng_a);
    loose.process_stop(y, 30.0, rng_b);
  }
  EXPECT_GE(tight.totals().online, loose.totals().online - 1e-9);
  EXPECT_GT(tight.forced_idle_stops() + tight.aborted_shutoffs(), 0u);
}

TEST(BatteryControllerTest, InvalidConfigurationThrows) {
  BatteryModel b = small_battery();
  b.capacity_wh = 0.0;
  EXPECT_THROW(SocConstrainedController(core::make_toi(kB), b),
               std::invalid_argument);
  b = small_battery();
  b.min_soc = 1.5;
  EXPECT_THROW(SocConstrainedController(core::make_toi(kB), b),
               std::invalid_argument);
  EXPECT_THROW(SocConstrainedController(nullptr, small_battery()),
               std::invalid_argument);
}

TEST(BatteryControllerTest, InvalidStopThrows) {
  SocConstrainedController ctl(core::make_toi(kB), small_battery());
  util::Rng rng(8);
  EXPECT_THROW(ctl.process_stop(-1.0, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(ctl.process_stop(5.0, -1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::sim
