#include "sim/fleet_eval.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/math.h"

namespace idlered::sim {
namespace {

constexpr double kB = 28.0;

Fleet crafted_fleet() {
  // veh-short: all stops well under B (DET/NEV should shine).
  // veh-long: all stops far over B (TOI should shine).
  // veh-mixed: both kinds.
  return Fleet{
      StopTrace{"veh-short", "A", {5.0, 8.0, 3.0, 12.0}},
      StopTrace{"veh-long", "A", {200.0, 300.0, 150.0}},
      StopTrace{"veh-mixed", "B", {5.0, 200.0, 10.0, 400.0}},
  };
}

TEST(StandardStrategySetTest, LineupAndOrder) {
  const auto specs = standard_strategy_set();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "TOI");
  EXPECT_EQ(specs[1].name, "NEV");
  EXPECT_EQ(specs[2].name, "DET");
  EXPECT_EQ(specs[3].name, "N-Rand");
  EXPECT_EQ(specs[4].name, "MOM-Rand");
  EXPECT_EQ(specs[5].name, "COA");
}

TEST(CompareStrategiesTest, PerVehicleCrValues) {
  const auto cmp =
      compare_strategies(crafted_fleet(), kB, standard_strategy_set());
  ASSERT_EQ(cmp.vehicles.size(), 3u);

  // veh-short: offline = 28 total. NEV/DET cost 28 -> CR 1. TOI costs
  // 4B = 112 -> CR 4.
  const auto& vs = cmp.vehicles[0];
  EXPECT_NEAR(vs.cr[0], 4.0 * kB / 28.0, 1e-12);  // TOI
  EXPECT_NEAR(vs.cr[1], 1.0, 1e-12);              // NEV
  EXPECT_NEAR(vs.cr[2], 1.0, 1e-12);              // DET

  // veh-long: offline = 3B. TOI -> CR 1. NEV -> 650/84. DET -> 2.
  const auto& vl = cmp.vehicles[1];
  EXPECT_NEAR(vl.cr[0], 1.0, 1e-12);
  EXPECT_NEAR(vl.cr[1], 650.0 / (3.0 * kB), 1e-12);
  EXPECT_NEAR(vl.cr[2], 2.0, 1e-12);
}

TEST(CompareStrategiesTest, CoaNeverWorseThanItsCandidates) {
  // COA picks among {TOI, DET, b-DET, N-Rand} using the vehicle's own
  // statistics; on every vehicle its CR must be within the per-vehicle
  // worst-case bound and no worse than N-Rand's.
  const auto cmp =
      compare_strategies(crafted_fleet(), kB, standard_strategy_set());
  for (const auto& v : cmp.vehicles) {
    EXPECT_LE(v.cr[5], util::kEOverEMinus1 + 1e-9) << v.vehicle_id;
  }
}

TEST(CompareStrategiesTest, MeanAndWorstAggregates) {
  const auto cmp =
      compare_strategies(crafted_fleet(), kB, standard_strategy_set());
  const auto means = cmp.mean_cr();
  const auto worsts = cmp.worst_cr();
  ASSERT_EQ(means.size(), 6u);
  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_LE(means[s], worsts[s] + 1e-12);
    double manual = 0.0;
    for (const auto& v : cmp.vehicles) manual += v.cr[s];
    EXPECT_NEAR(means[s], manual / 3.0, 1e-12);
  }
}

TEST(CompareStrategiesTest, BestCountsSumAtLeastVehicles) {
  const auto cmp =
      compare_strategies(crafted_fleet(), kB, standard_strategy_set());
  const auto counts = cmp.best_counts();
  std::size_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_GE(total, cmp.vehicles.size());  // ties may exceed
}

TEST(CompareStrategiesTest, FilterArea) {
  const auto cmp =
      compare_strategies(crafted_fleet(), kB, standard_strategy_set());
  const auto area_a = cmp.filter_area("A");
  EXPECT_EQ(area_a.vehicles.size(), 2u);
  const auto area_b = cmp.filter_area("B");
  EXPECT_EQ(area_b.vehicles.size(), 1u);
  EXPECT_EQ(cmp.filter_area("nowhere").vehicles.size(), 0u);
}

TEST(CompareStrategiesTest, EmptyVehiclesSkipped) {
  Fleet fleet = crafted_fleet();
  fleet.push_back(StopTrace{"veh-empty", "A", {}});
  const auto cmp = compare_strategies(fleet, kB, standard_strategy_set());
  EXPECT_EQ(cmp.vehicles.size(), 3u);
}

TEST(CompareStrategiesTest, NoStrategiesThrows) {
  EXPECT_THROW(compare_strategies(crafted_fleet(), kB, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::sim
