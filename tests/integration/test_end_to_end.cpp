// Cross-module integration tests: the full pipelines behind the paper's
// experiments, on reduced problem sizes so they stay fast under ctest.
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/proposed.h"
#include "core/region.h"
#include "costmodel/break_even.h"
#include "dist/empirical.h"
#include "sim/controller.h"
#include "sim/fleet_eval.h"
#include "stats/descriptive.h"
#include "traces/fleet_generator.h"
#include "traffic/intersection.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered {
namespace {

// ------------------------------------------------------ Figure 4 in miniature

sim::Fleet mini_study_fleet(std::uint64_t seed, int per_area) {
  util::Rng rng(seed);
  sim::Fleet fleet;
  for (auto area : traces::all_areas()) {
    area.num_vehicles_driving = per_area;
    util::Rng area_rng = rng.fork(std::hash<std::string>{}(area.name));
    auto part = traces::generate_area_fleet(area, area_rng);
    fleet.insert(fleet.end(), part.begin(), part.end());
  }
  return fleet;
}

class VehicleStudy : public ::testing::TestWithParam<double> {};

TEST_P(VehicleStudy, CoaDominatesFleetwide) {
  const double b = GetParam();  // 28 (SSV) and 47 (no SSS)
  const auto fleet = mini_study_fleet(2024, 60);
  const auto cmp =
      sim::compare_strategies(fleet, b, sim::standard_strategy_set());
  ASSERT_EQ(cmp.vehicles.size(), 180u);

  const auto means = cmp.mean_cr();
  const auto worsts = cmp.worst_cr();
  const auto best = cmp.best_counts(1e-6);
  const std::size_t coa = 5;  // COA is last in the standard lineup

  // Headline paper claims, qualitatively: COA has the lowest worst-case CR
  // and the lowest (or tied-lowest) mean CR of the lineup.
  for (std::size_t s = 0; s < cmp.num_strategies(); ++s) {
    EXPECT_LE(worsts[coa], worsts[s] + 1e-9) << cmp.strategy_names[s];
    // COA provably dominates TOI/DET/N-Rand per vehicle; against NEV and
    // MOM-Rand the domination is statistical, so allow a small cushion.
    const double cushion =
        (cmp.strategy_names[s] == "NEV" || cmp.strategy_names[s] == "MOM-Rand")
            ? 0.02
            : 1e-9;
    EXPECT_LE(means[coa], means[s] + cushion) << cmp.strategy_names[s];
  }
  // ... and is the best strategy on the large majority of vehicles
  // (paper: 1169/1182 ~ 99% for B=28, 977/1182 ~ 83% for B=47; our reduced
  // 180-vehicle fleet shows the same ordering with wider noise).
  EXPECT_GT(static_cast<double>(best[coa]) /
                static_cast<double>(cmp.vehicles.size()),
            0.65);
  // Its worst-case CR also respects the theory bound e/(e-1) everywhere.
  EXPECT_LE(worsts[coa], util::kEOverEMinus1 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BreakEvens, VehicleStudy,
                         ::testing::Values(28.0, 47.0));

// --------------------------------------------------- Figure 5/6 in miniature

TEST(TrafficSweep, CoaIsLowerEnvelopeAcrossMeans) {
  // Worst-case CR as a function of mean stop length: DET should win short
  // means, TOI long means, and COA must match the per-point minimum.
  const auto profile = traces::chicago();
  for (double mean_stop : {8.0, 30.0, 60.0, 150.0}) {
    const auto law = traces::scaled_stop_distribution(profile, mean_stop);
    const auto s = dist::ShortStopStats::from_distribution(*law, 28.0);
    const auto choice = core::choose_strategy(s, 28.0);
    EXPECT_LE(choice.cr, core::worst_case_cr_det(s, 28.0) + 1e-9);
    EXPECT_LE(choice.cr, core::worst_case_cr_toi(s, 28.0) + 1e-9);
    EXPECT_LE(choice.cr, util::kEOverEMinus1 + 1e-9);
  }
}

TEST(TrafficSweep, RegimesMatchPaperStory) {
  const auto profile = traces::chicago();
  // Very short mean stops: DET territory. Very long: TOI territory.
  const auto short_law = traces::scaled_stop_distribution(profile, 4.0);
  const auto long_law = traces::scaled_stop_distribution(profile, 400.0);
  const auto short_choice = core::choose_strategy(
      dist::ShortStopStats::from_distribution(*short_law, 28.0), 28.0);
  const auto long_choice = core::choose_strategy(
      dist::ShortStopStats::from_distribution(*long_law, 28.0), 28.0);
  EXPECT_EQ(short_choice.strategy, core::Strategy::kDet);
  EXPECT_EQ(long_choice.strategy, core::Strategy::kToi);
}

// ------------------------------------------- cost model -> policy -> traffic

TEST(FullPipeline, TrafficSimulatorFeedsController) {
  // Stops produced by the mechanistic intersection model drive the adaptive
  // controller end to end; the realized CR must respect the N-Rand bound
  // (warm-up runs N-Rand; afterwards COA only improves).
  traffic::IntersectionConfig cfg;
  cfg.signal.cycle_s = 90.0;
  cfg.signal.green_s = 40.0;
  cfg.arrival_rate_per_s = 0.15;
  traffic::IntersectionSimulator sim(cfg);
  util::Rng rng(77);
  const auto stops = sim.simulate(400000.0, rng);
  ASSERT_GT(stops.size(), 500u);

  const auto breakdown = costmodel::compute_break_even(costmodel::ssv_vehicle());
  sim::AdaptiveController::Config ctl_cfg;
  ctl_cfg.break_even = breakdown.break_even_s;
  ctl_cfg.warmup_stops = 25;
  sim::AdaptiveController ctl(ctl_cfg);
  for (double y : stops) ctl.process_stop_expected(y);
  EXPECT_LE(ctl.totals().cr(), util::kEOverEMinus1 + 0.02);
  EXPECT_GE(ctl.totals().cr(), 1.0 - 1e-9);
}

TEST(FullPipeline, EmpiricalModelMatchesDirectStats) {
  // Building an Empirical distribution from a generated vehicle trace and
  // deriving (mu, q) from it must agree with the direct sample statistics.
  util::Rng rng(88);
  const auto trace = traces::generate_vehicle(traces::atlanta(), 0, rng);
  dist::Empirical model(trace.stops);
  const auto via_model = dist::ShortStopStats::from_distribution(model, 28.0);
  const auto direct = dist::ShortStopStats::from_sample(trace.stops, 28.0);
  EXPECT_NEAR(via_model.mu_b_minus, direct.mu_b_minus, 1e-9);
  EXPECT_NEAR(via_model.q_b_plus, direct.q_b_plus, 1e-9);
}

TEST(FullPipeline, CsvRoundTripPreservesComparison) {
  const auto fleet = mini_study_fleet(5, 10);
  const auto restored = sim::fleet_from_csv(sim::fleet_to_csv(fleet));
  const auto a =
      sim::compare_strategies(fleet, 28.0, sim::standard_strategy_set());
  const auto b =
      sim::compare_strategies(restored, 28.0, sim::standard_strategy_set());
  ASSERT_EQ(a.vehicles.size(), b.vehicles.size());
  for (std::size_t i = 0; i < a.vehicles.size(); ++i) {
    for (std::size_t s = 0; s < a.num_strategies(); ++s) {
      EXPECT_DOUBLE_EQ(a.vehicles[i].cr[s], b.vehicles[i].cr[s]);
    }
  }
}

TEST(FullPipeline, RegionMapConsistentWithPerVehicleChoices) {
  // A vehicle's empirical statistics, looked up in the Figure-1 machinery,
  // must yield the same strategy the ProposedPolicy actually adopts.
  const auto fleet = mini_study_fleet(7, 15);
  for (const auto& t : fleet) {
    if (t.stops.size() < 5) continue;
    const auto s = dist::ShortStopStats::from_sample(t.stops, 28.0);
    const auto choice = core::choose_strategy(s, 28.0);
    core::ProposedPolicy policy(28.0, t.stops);
    EXPECT_EQ(policy.choice().strategy, choice.strategy) << t.vehicle_id;
  }
}

}  // namespace
}  // namespace idlered

// The umbrella header must compile and expose the whole public API.
#include "idlered.h"

namespace idlered {
namespace {

TEST(UmbrellaHeader, ExposesEveryModule) {
  // One symbol per module, touched through the umbrella include.
  EXPECT_GT(util::kEOverEMinus1, 1.58);
  EXPECT_EQ(lp::to_string(lp::Status::kOptimal), "optimal");
  EXPECT_NO_THROW(stats::Histogram(0.0, 1.0, 2));
  EXPECT_NO_THROW(dist::Exponential(1.0));
  EXPECT_NO_THROW(costmodel::ssv_vehicle());
  EXPECT_NO_THROW(core::make_toi(28.0));
  EXPECT_NO_THROW(core::make_c_rand(28.0, 10.0));
  EXPECT_NO_THROW(traces::nycc());
  EXPECT_NO_THROW(traffic::IntersectionConfig{});
  EXPECT_NO_THROW(sim::BatteryModel{});
  dist::ShortStopStats s;
  s.mu_b_minus = 5.0;
  s.q_b_plus = 0.3;
  EXPECT_NO_THROW(analysis::worst_case_adversary(*core::make_det(28.0), s));
}

}  // namespace
}  // namespace idlered
