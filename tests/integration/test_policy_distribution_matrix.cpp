// Cross-product property suite: every online policy against every
// stop-length law, checking the invariants that must hold for *all*
// pairings. gtest Combine instantiates the full matrix so a regression in
// any policy/distribution interaction is pinpointed to its cell.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/policies.h"
#include "core/proposed.h"
#include "dist/adaptors.h"
#include "dist/empirical.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "sim/evaluator.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered {
namespace {

constexpr double kB = 28.0;

enum class PolicyKind { kToi, kNev, kDet, kBDet, kNRand, kMomRand, kCoa };
enum class LawKind {
  kExpShort,
  kExpLong,
  kUniform,
  kLogNormal,
  kParetoMix,
  kBimodal
};

const char* to_string(PolicyKind p) {
  switch (p) {
    case PolicyKind::kToi: return "TOI";
    case PolicyKind::kNev: return "NEV";
    case PolicyKind::kDet: return "DET";
    case PolicyKind::kBDet: return "bDET";
    case PolicyKind::kNRand: return "NRand";
    case PolicyKind::kMomRand: return "MomRand";
    case PolicyKind::kCoa: return "COA";
  }
  return "?";
}

const char* to_string(LawKind l) {
  switch (l) {
    case LawKind::kExpShort: return "ExpShort";
    case LawKind::kExpLong: return "ExpLong";
    case LawKind::kUniform: return "Uniform";
    case LawKind::kLogNormal: return "LogNormal";
    case LawKind::kParetoMix: return "ParetoMix";
    case LawKind::kBimodal: return "Bimodal";
  }
  return "?";
}

dist::DistributionPtr make_law(LawKind kind) {
  switch (kind) {
    case LawKind::kExpShort:
      return std::make_shared<dist::Exponential>(9.0);
    case LawKind::kExpLong:
      return std::make_shared<dist::Exponential>(75.0);
    case LawKind::kUniform:
      return std::make_shared<dist::Uniform>(0.0, 90.0);
    case LawKind::kLogNormal:
      return std::make_shared<dist::LogNormal>(
          dist::LogNormal::from_mean_median(30.0, 18.0));
    case LawKind::kParetoMix:
      return std::make_shared<dist::Mixture>(
          std::vector<dist::Mixture::Component>{
              {0.8, std::make_shared<dist::LogNormal>(
                        dist::LogNormal::from_mean_median(20.0, 12.0))},
              {0.2, std::make_shared<dist::Pareto>(50.0, 1.6)}});
    case LawKind::kBimodal:
      return std::make_shared<dist::Mixture>(
          std::vector<dist::Mixture::Component>{
              {0.7, std::make_shared<dist::Uniform>(0.0, 8.0)},
              {0.3, std::make_shared<dist::Uniform>(100.0, 400.0)}});
  }
  throw std::logic_error("unknown law");
}

core::PolicyPtr make_policy(PolicyKind kind,
                            const std::vector<double>& stops) {
  switch (kind) {
    case PolicyKind::kToi: return core::make_toi(kB);
    case PolicyKind::kNev: return core::make_nev(kB);
    case PolicyKind::kDet: return core::make_det(kB);
    case PolicyKind::kBDet: return core::make_b_det(kB, 0.4 * kB);
    case PolicyKind::kNRand: return core::make_n_rand(kB);
    case PolicyKind::kMomRand: {
      double mu = 0.0;
      for (double y : stops) mu += y;
      return core::make_mom_rand(kB, mu / static_cast<double>(stops.size()));
    }
    case PolicyKind::kCoa:
      return std::make_shared<core::ProposedPolicy>(kB, stops);
  }
  throw std::logic_error("unknown policy");
}

class PolicyLawMatrix
    : public ::testing::TestWithParam<std::tuple<PolicyKind, LawKind>> {
 protected:
  void SetUp() override {
    const auto law = make_law(std::get<1>(GetParam()));
    util::Rng rng(0xC0FFEE);
    stops_ = law->sample_many(rng, 20000);
    policy_ = make_policy(std::get<0>(GetParam()), stops_);
  }

  std::vector<double> stops_;
  core::PolicyPtr policy_;
};

TEST_P(PolicyLawMatrix, OnlineNeverBeatsOffline) {
  // cost_online >= cost_offline pointwise, hence also in expectation.
  const auto totals = sim::evaluate(*policy_, stops_);
  EXPECT_GE(totals.online, totals.offline - 1e-9);
  EXPECT_GE(totals.cr(), 1.0 - 1e-12);
}

TEST_P(PolicyLawMatrix, PerStopCostWithinHardEnvelope) {
  // Every policy supported on [0, B] (all but NEV) pays at most
  // min(y, B) + B per stop in expectation; NEV pays exactly y.
  const bool is_nev = std::get<0>(GetParam()) == PolicyKind::kNev;
  for (std::size_t i = 0; i < 200; ++i) {
    const double y = stops_[i];
    const double c = policy_->expected_cost(y);
    if (is_nev) {
      EXPECT_DOUBLE_EQ(c, y);
    } else {
      EXPECT_LE(c, std::min(y, kB) + kB + 1e-9) << "y=" << y;
    }
  }
}

TEST_P(PolicyLawMatrix, SampledCostConsistentWithExpected) {
  // Monte-Carlo evaluation converges to expected-mode on a long trace.
  util::Rng rng(0xBEEF);
  const auto sampled =
      sim::evaluate(*policy_, stops_, {sim::EvalMode::kSampled, &rng});
  const auto expected = sim::evaluate(*policy_, stops_);
  // NEV/TOI/DET are deterministic: exact match. Randomized: 2% band.
  const double tol = policy_->deterministic() ? 1e-9 : 0.02 * expected.cr();
  EXPECT_NEAR(sampled.cr(), expected.cr(), tol)
      << to_string(std::get<0>(GetParam())) << " on "
      << to_string(std::get<1>(GetParam()));
}

TEST_P(PolicyLawMatrix, ThresholdsStayInSupport) {
  util::Rng rng(0xABCD);
  const bool is_nev = std::get<0>(GetParam()) == PolicyKind::kNev;
  for (int i = 0; i < 300; ++i) {
    const double x = policy_->sample_threshold(rng);
    if (is_nev) {
      EXPECT_TRUE(std::isinf(x));
    } else {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, kB + 1e-12);
    }
  }
}

TEST_P(PolicyLawMatrix, CoaSpecificGuarantee) {
  if (std::get<0>(GetParam()) != PolicyKind::kCoa) GTEST_SKIP();
  // COA's trace CR must respect both the e/(e-1) cap and its own printed
  // worst-case bound (its statistics come from this very trace).
  const auto& coa = dynamic_cast<const core::ProposedPolicy&>(*policy_);
  const double cr = sim::evaluate(coa, stops_).cr();
  EXPECT_LE(cr, util::kEOverEMinus1 + 1e-9);
  EXPECT_LE(cr, coa.worst_case_cr() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicyLawMatrix,
    ::testing::Combine(
        ::testing::Values(PolicyKind::kToi, PolicyKind::kNev,
                          PolicyKind::kDet, PolicyKind::kBDet,
                          PolicyKind::kNRand, PolicyKind::kMomRand,
                          PolicyKind::kCoa),
        ::testing::Values(LawKind::kExpShort, LawKind::kExpLong,
                          LawKind::kUniform, LawKind::kLogNormal,
                          LawKind::kParetoMix, LawKind::kBimodal)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, LawKind>>&
           info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace idlered
