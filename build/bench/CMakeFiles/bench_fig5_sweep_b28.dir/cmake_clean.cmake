file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sweep_b28.dir/bench_fig5_sweep_b28.cpp.o"
  "CMakeFiles/bench_fig5_sweep_b28.dir/bench_fig5_sweep_b28.cpp.o.d"
  "bench_fig5_sweep_b28"
  "bench_fig5_sweep_b28.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sweep_b28.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
