# Empty dependencies file for bench_fig5_sweep_b28.
# This may be replaced when dependencies are built.
