file(REMOVE_RECURSE
  "CMakeFiles/idlered_bench_common.dir/common/sweep.cpp.o"
  "CMakeFiles/idlered_bench_common.dir/common/sweep.cpp.o.d"
  "libidlered_bench_common.a"
  "libidlered_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
