file(REMOVE_RECURSE
  "libidlered_bench_common.a"
)
