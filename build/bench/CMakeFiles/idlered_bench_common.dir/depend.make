# Empty dependencies file for idlered_bench_common.
# This may be replaced when dependencies are built.
