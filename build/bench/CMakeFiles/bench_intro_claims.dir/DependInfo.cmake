
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_intro_claims.cpp" "bench/CMakeFiles/bench_intro_claims.dir/bench_intro_claims.cpp.o" "gcc" "bench/CMakeFiles/bench_intro_claims.dir/bench_intro_claims.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/idlered_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idlered_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/idlered_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/idlered_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idlered_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idlered_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idlered_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idlered_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/idlered_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
