# Empty dependencies file for bench_intro_claims.
# This may be replaced when dependencies are built.
