file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_claims.dir/bench_intro_claims.cpp.o"
  "CMakeFiles/bench_intro_claims.dir/bench_intro_claims.cpp.o.d"
  "bench_intro_claims"
  "bench_intro_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
