# Empty dependencies file for bench_ablation_average_case.
# This may be replaced when dependencies are built.
