# Empty dependencies file for bench_extension_crand.
# This may be replaced when dependencies are built.
