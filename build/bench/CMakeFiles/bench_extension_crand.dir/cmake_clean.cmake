file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_crand.dir/bench_extension_crand.cpp.o"
  "CMakeFiles/bench_extension_crand.dir/bench_extension_crand.cpp.o.d"
  "bench_extension_crand"
  "bench_extension_crand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_crand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
