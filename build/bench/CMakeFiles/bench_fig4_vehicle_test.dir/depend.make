# Empty dependencies file for bench_fig4_vehicle_test.
# This may be replaced when dependencies are built.
