file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_vehicle_test.dir/bench_fig4_vehicle_test.cpp.o"
  "CMakeFiles/bench_fig4_vehicle_test.dir/bench_fig4_vehicle_test.cpp.o.d"
  "bench_fig4_vehicle_test"
  "bench_fig4_vehicle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_vehicle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
