# Empty compiler generated dependencies file for bench_validation_substrates.
# This may be replaced when dependencies are built.
