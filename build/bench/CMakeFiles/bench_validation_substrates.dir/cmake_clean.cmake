file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_substrates.dir/bench_validation_substrates.cpp.o"
  "CMakeFiles/bench_validation_substrates.dir/bench_validation_substrates.cpp.o.d"
  "bench_validation_substrates"
  "bench_validation_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
