file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_battery.dir/bench_ablation_battery.cpp.o"
  "CMakeFiles/bench_ablation_battery.dir/bench_ablation_battery.cpp.o.d"
  "bench_ablation_battery"
  "bench_ablation_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
