# Empty compiler generated dependencies file for bench_ablation_battery.
# This may be replaced when dependencies are built.
