# Empty dependencies file for bench_fig6_sweep_b47.
# This may be replaced when dependencies are built.
