file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sweep_b47.dir/bench_fig6_sweep_b47.cpp.o"
  "CMakeFiles/bench_fig6_sweep_b47.dir/bench_fig6_sweep_b47.cpp.o.d"
  "bench_fig6_sweep_b47"
  "bench_fig6_sweep_b47.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sweep_b47.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
