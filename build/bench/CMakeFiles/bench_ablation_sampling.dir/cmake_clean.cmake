file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sampling.dir/bench_ablation_sampling.cpp.o"
  "CMakeFiles/bench_ablation_sampling.dir/bench_ablation_sampling.cpp.o.d"
  "bench_ablation_sampling"
  "bench_ablation_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
