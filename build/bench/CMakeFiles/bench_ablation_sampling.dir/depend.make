# Empty dependencies file for bench_ablation_sampling.
# This may be replaced when dependencies are built.
