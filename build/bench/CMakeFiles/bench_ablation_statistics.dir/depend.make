# Empty dependencies file for bench_ablation_statistics.
# This may be replaced when dependencies are built.
