file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_statistics.dir/bench_ablation_statistics.cpp.o"
  "CMakeFiles/bench_ablation_statistics.dir/bench_ablation_statistics.cpp.o.d"
  "bench_ablation_statistics"
  "bench_ablation_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
