file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_metrics.dir/bench_ablation_metrics.cpp.o"
  "CMakeFiles/bench_ablation_metrics.dir/bench_ablation_metrics.cpp.o.d"
  "bench_ablation_metrics"
  "bench_ablation_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
