# Empty dependencies file for bench_ablation_metrics.
# This may be replaced when dependencies are built.
