# Empty compiler generated dependencies file for bench_ablation_estimation.
# This may be replaced when dependencies are built.
