file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_estimation.dir/bench_ablation_estimation.cpp.o"
  "CMakeFiles/bench_ablation_estimation.dir/bench_ablation_estimation.cpp.o.d"
  "bench_ablation_estimation"
  "bench_ablation_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
