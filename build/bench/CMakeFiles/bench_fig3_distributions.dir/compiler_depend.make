# Empty compiler generated dependencies file for bench_fig3_distributions.
# This may be replaced when dependencies are built.
