file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_distributions.dir/bench_fig3_distributions.cpp.o"
  "CMakeFiles/bench_fig3_distributions.dir/bench_fig3_distributions.cpp.o.d"
  "bench_fig3_distributions"
  "bench_fig3_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
