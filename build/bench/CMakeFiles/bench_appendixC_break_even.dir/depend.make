# Empty dependencies file for bench_appendixC_break_even.
# This may be replaced when dependencies are built.
