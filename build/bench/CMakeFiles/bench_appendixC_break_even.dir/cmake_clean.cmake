file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixC_break_even.dir/bench_appendixC_break_even.cpp.o"
  "CMakeFiles/bench_appendixC_break_even.dir/bench_appendixC_break_even.cpp.o.d"
  "bench_appendixC_break_even"
  "bench_appendixC_break_even.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixC_break_even.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
