# Empty dependencies file for bench_fig2_projections.
# This may be replaced when dependencies are built.
