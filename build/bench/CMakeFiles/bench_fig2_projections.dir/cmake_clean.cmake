file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_projections.dir/bench_fig2_projections.cpp.o"
  "CMakeFiles/bench_fig2_projections.dir/bench_fig2_projections.cpp.o.d"
  "bench_fig2_projections"
  "bench_fig2_projections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_projections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
