# Empty dependencies file for bench_ablation_multislope.
# This may be replaced when dependencies are built.
