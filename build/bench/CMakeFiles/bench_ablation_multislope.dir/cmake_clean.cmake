file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multislope.dir/bench_ablation_multislope.cpp.o"
  "CMakeFiles/bench_ablation_multislope.dir/bench_ablation_multislope.cpp.o.d"
  "bench_ablation_multislope"
  "bench_ablation_multislope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multislope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
