file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_stops_per_day.dir/bench_table1_stops_per_day.cpp.o"
  "CMakeFiles/bench_table1_stops_per_day.dir/bench_table1_stops_per_day.cpp.o.d"
  "bench_table1_stops_per_day"
  "bench_table1_stops_per_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_stops_per_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
