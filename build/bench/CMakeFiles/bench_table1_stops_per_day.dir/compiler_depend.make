# Empty compiler generated dependencies file for bench_table1_stops_per_day.
# This may be replaced when dependencies are built.
