file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_regions.dir/bench_fig1_regions.cpp.o"
  "CMakeFiles/bench_fig1_regions.dir/bench_fig1_regions.cpp.o.d"
  "bench_fig1_regions"
  "bench_fig1_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
