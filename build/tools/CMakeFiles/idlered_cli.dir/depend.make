# Empty dependencies file for idlered_cli.
# This may be replaced when dependencies are built.
