file(REMOVE_RECURSE
  "CMakeFiles/idlered_cli.dir/idlered_cli.cpp.o"
  "CMakeFiles/idlered_cli.dir/idlered_cli.cpp.o.d"
  "idlered_cli"
  "idlered_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
