file(REMOVE_RECURSE
  "libidlered_traces.a"
)
