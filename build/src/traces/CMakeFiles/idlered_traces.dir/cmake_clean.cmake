file(REMOVE_RECURSE
  "CMakeFiles/idlered_traces.dir/area_profiles.cpp.o"
  "CMakeFiles/idlered_traces.dir/area_profiles.cpp.o.d"
  "CMakeFiles/idlered_traces.dir/drive_cycles.cpp.o"
  "CMakeFiles/idlered_traces.dir/drive_cycles.cpp.o.d"
  "CMakeFiles/idlered_traces.dir/fleet_generator.cpp.o"
  "CMakeFiles/idlered_traces.dir/fleet_generator.cpp.o.d"
  "libidlered_traces.a"
  "libidlered_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
