# Empty dependencies file for idlered_traces.
# This may be replaced when dependencies are built.
