
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/adaptors.cpp" "src/dist/CMakeFiles/idlered_dist.dir/adaptors.cpp.o" "gcc" "src/dist/CMakeFiles/idlered_dist.dir/adaptors.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/dist/CMakeFiles/idlered_dist.dir/distribution.cpp.o" "gcc" "src/dist/CMakeFiles/idlered_dist.dir/distribution.cpp.o.d"
  "/root/repo/src/dist/empirical.cpp" "src/dist/CMakeFiles/idlered_dist.dir/empirical.cpp.o" "gcc" "src/dist/CMakeFiles/idlered_dist.dir/empirical.cpp.o.d"
  "/root/repo/src/dist/mixture.cpp" "src/dist/CMakeFiles/idlered_dist.dir/mixture.cpp.o" "gcc" "src/dist/CMakeFiles/idlered_dist.dir/mixture.cpp.o.d"
  "/root/repo/src/dist/parametric.cpp" "src/dist/CMakeFiles/idlered_dist.dir/parametric.cpp.o" "gcc" "src/dist/CMakeFiles/idlered_dist.dir/parametric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
