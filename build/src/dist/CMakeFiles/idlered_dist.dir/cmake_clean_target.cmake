file(REMOVE_RECURSE
  "libidlered_dist.a"
)
