file(REMOVE_RECURSE
  "CMakeFiles/idlered_dist.dir/adaptors.cpp.o"
  "CMakeFiles/idlered_dist.dir/adaptors.cpp.o.d"
  "CMakeFiles/idlered_dist.dir/distribution.cpp.o"
  "CMakeFiles/idlered_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/idlered_dist.dir/empirical.cpp.o"
  "CMakeFiles/idlered_dist.dir/empirical.cpp.o.d"
  "CMakeFiles/idlered_dist.dir/mixture.cpp.o"
  "CMakeFiles/idlered_dist.dir/mixture.cpp.o.d"
  "CMakeFiles/idlered_dist.dir/parametric.cpp.o"
  "CMakeFiles/idlered_dist.dir/parametric.cpp.o.d"
  "libidlered_dist.a"
  "libidlered_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
