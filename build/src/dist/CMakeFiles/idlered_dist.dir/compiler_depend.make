# Empty compiler generated dependencies file for idlered_dist.
# This may be replaced when dependencies are built.
