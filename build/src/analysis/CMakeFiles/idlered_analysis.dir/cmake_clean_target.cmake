file(REMOVE_RECURSE
  "libidlered_analysis.a"
)
