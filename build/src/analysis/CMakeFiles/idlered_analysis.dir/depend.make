# Empty dependencies file for idlered_analysis.
# This may be replaced when dependencies are built.
