
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/adversary.cpp" "src/analysis/CMakeFiles/idlered_analysis.dir/adversary.cpp.o" "gcc" "src/analysis/CMakeFiles/idlered_analysis.dir/adversary.cpp.o.d"
  "/root/repo/src/analysis/average_case.cpp" "src/analysis/CMakeFiles/idlered_analysis.dir/average_case.cpp.o" "gcc" "src/analysis/CMakeFiles/idlered_analysis.dir/average_case.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/idlered_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/idlered_analysis.dir/metrics.cpp.o.d"
  "/root/repo/src/analysis/minimax.cpp" "src/analysis/CMakeFiles/idlered_analysis.dir/minimax.cpp.o" "gcc" "src/analysis/CMakeFiles/idlered_analysis.dir/minimax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/idlered_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/idlered_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idlered_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
