file(REMOVE_RECURSE
  "CMakeFiles/idlered_analysis.dir/adversary.cpp.o"
  "CMakeFiles/idlered_analysis.dir/adversary.cpp.o.d"
  "CMakeFiles/idlered_analysis.dir/average_case.cpp.o"
  "CMakeFiles/idlered_analysis.dir/average_case.cpp.o.d"
  "CMakeFiles/idlered_analysis.dir/metrics.cpp.o"
  "CMakeFiles/idlered_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/idlered_analysis.dir/minimax.cpp.o"
  "CMakeFiles/idlered_analysis.dir/minimax.cpp.o.d"
  "libidlered_analysis.a"
  "libidlered_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
