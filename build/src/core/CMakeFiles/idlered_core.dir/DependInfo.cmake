
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/idlered_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/costs.cpp" "src/core/CMakeFiles/idlered_core.dir/costs.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/costs.cpp.o.d"
  "/root/repo/src/core/crand.cpp" "src/core/CMakeFiles/idlered_core.dir/crand.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/crand.cpp.o.d"
  "/root/repo/src/core/decision_distribution.cpp" "src/core/CMakeFiles/idlered_core.dir/decision_distribution.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/decision_distribution.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/idlered_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/multislope.cpp" "src/core/CMakeFiles/idlered_core.dir/multislope.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/multislope.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/idlered_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/idlered_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/proposed.cpp" "src/core/CMakeFiles/idlered_core.dir/proposed.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/proposed.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/core/CMakeFiles/idlered_core.dir/region.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/region.cpp.o.d"
  "/root/repo/src/core/solver_lp.cpp" "src/core/CMakeFiles/idlered_core.dir/solver_lp.cpp.o" "gcc" "src/core/CMakeFiles/idlered_core.dir/solver_lp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/idlered_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idlered_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
