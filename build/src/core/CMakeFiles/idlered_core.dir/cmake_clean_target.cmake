file(REMOVE_RECURSE
  "libidlered_core.a"
)
