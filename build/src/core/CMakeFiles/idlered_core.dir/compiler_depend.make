# Empty compiler generated dependencies file for idlered_core.
# This may be replaced when dependencies are built.
