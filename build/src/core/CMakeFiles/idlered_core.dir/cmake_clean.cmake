file(REMOVE_RECURSE
  "CMakeFiles/idlered_core.dir/analytic.cpp.o"
  "CMakeFiles/idlered_core.dir/analytic.cpp.o.d"
  "CMakeFiles/idlered_core.dir/costs.cpp.o"
  "CMakeFiles/idlered_core.dir/costs.cpp.o.d"
  "CMakeFiles/idlered_core.dir/crand.cpp.o"
  "CMakeFiles/idlered_core.dir/crand.cpp.o.d"
  "CMakeFiles/idlered_core.dir/decision_distribution.cpp.o"
  "CMakeFiles/idlered_core.dir/decision_distribution.cpp.o.d"
  "CMakeFiles/idlered_core.dir/estimator.cpp.o"
  "CMakeFiles/idlered_core.dir/estimator.cpp.o.d"
  "CMakeFiles/idlered_core.dir/multislope.cpp.o"
  "CMakeFiles/idlered_core.dir/multislope.cpp.o.d"
  "CMakeFiles/idlered_core.dir/policies.cpp.o"
  "CMakeFiles/idlered_core.dir/policies.cpp.o.d"
  "CMakeFiles/idlered_core.dir/policy.cpp.o"
  "CMakeFiles/idlered_core.dir/policy.cpp.o.d"
  "CMakeFiles/idlered_core.dir/proposed.cpp.o"
  "CMakeFiles/idlered_core.dir/proposed.cpp.o.d"
  "CMakeFiles/idlered_core.dir/region.cpp.o"
  "CMakeFiles/idlered_core.dir/region.cpp.o.d"
  "CMakeFiles/idlered_core.dir/solver_lp.cpp.o"
  "CMakeFiles/idlered_core.dir/solver_lp.cpp.o.d"
  "libidlered_core.a"
  "libidlered_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
