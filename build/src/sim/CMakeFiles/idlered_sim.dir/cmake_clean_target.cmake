file(REMOVE_RECURSE
  "libidlered_sim.a"
)
