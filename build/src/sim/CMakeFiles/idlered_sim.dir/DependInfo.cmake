
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/battery.cpp" "src/sim/CMakeFiles/idlered_sim.dir/battery.cpp.o" "gcc" "src/sim/CMakeFiles/idlered_sim.dir/battery.cpp.o.d"
  "/root/repo/src/sim/controller.cpp" "src/sim/CMakeFiles/idlered_sim.dir/controller.cpp.o" "gcc" "src/sim/CMakeFiles/idlered_sim.dir/controller.cpp.o.d"
  "/root/repo/src/sim/evaluator.cpp" "src/sim/CMakeFiles/idlered_sim.dir/evaluator.cpp.o" "gcc" "src/sim/CMakeFiles/idlered_sim.dir/evaluator.cpp.o.d"
  "/root/repo/src/sim/fleet_eval.cpp" "src/sim/CMakeFiles/idlered_sim.dir/fleet_eval.cpp.o" "gcc" "src/sim/CMakeFiles/idlered_sim.dir/fleet_eval.cpp.o.d"
  "/root/repo/src/sim/savings.cpp" "src/sim/CMakeFiles/idlered_sim.dir/savings.cpp.o" "gcc" "src/sim/CMakeFiles/idlered_sim.dir/savings.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/idlered_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/idlered_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/idlered_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/idlered_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idlered_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idlered_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
