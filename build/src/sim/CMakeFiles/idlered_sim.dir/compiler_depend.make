# Empty compiler generated dependencies file for idlered_sim.
# This may be replaced when dependencies are built.
