file(REMOVE_RECURSE
  "CMakeFiles/idlered_sim.dir/battery.cpp.o"
  "CMakeFiles/idlered_sim.dir/battery.cpp.o.d"
  "CMakeFiles/idlered_sim.dir/controller.cpp.o"
  "CMakeFiles/idlered_sim.dir/controller.cpp.o.d"
  "CMakeFiles/idlered_sim.dir/evaluator.cpp.o"
  "CMakeFiles/idlered_sim.dir/evaluator.cpp.o.d"
  "CMakeFiles/idlered_sim.dir/fleet_eval.cpp.o"
  "CMakeFiles/idlered_sim.dir/fleet_eval.cpp.o.d"
  "CMakeFiles/idlered_sim.dir/savings.cpp.o"
  "CMakeFiles/idlered_sim.dir/savings.cpp.o.d"
  "CMakeFiles/idlered_sim.dir/trace.cpp.o"
  "CMakeFiles/idlered_sim.dir/trace.cpp.o.d"
  "libidlered_sim.a"
  "libidlered_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
