
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/idlered_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/idlered_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/idlered_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/idlered_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/idlered_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/idlered_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/idlered_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/idlered_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/kaplan_meier.cpp" "src/stats/CMakeFiles/idlered_stats.dir/kaplan_meier.cpp.o" "gcc" "src/stats/CMakeFiles/idlered_stats.dir/kaplan_meier.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/idlered_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/idlered_stats.dir/ks_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
