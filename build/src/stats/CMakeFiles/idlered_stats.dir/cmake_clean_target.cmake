file(REMOVE_RECURSE
  "libidlered_stats.a"
)
