# Empty dependencies file for idlered_stats.
# This may be replaced when dependencies are built.
