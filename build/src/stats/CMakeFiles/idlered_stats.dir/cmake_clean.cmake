file(REMOVE_RECURSE
  "CMakeFiles/idlered_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/idlered_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/idlered_stats.dir/descriptive.cpp.o"
  "CMakeFiles/idlered_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/idlered_stats.dir/ecdf.cpp.o"
  "CMakeFiles/idlered_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/idlered_stats.dir/histogram.cpp.o"
  "CMakeFiles/idlered_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/idlered_stats.dir/kaplan_meier.cpp.o"
  "CMakeFiles/idlered_stats.dir/kaplan_meier.cpp.o.d"
  "CMakeFiles/idlered_stats.dir/ks_test.cpp.o"
  "CMakeFiles/idlered_stats.dir/ks_test.cpp.o.d"
  "libidlered_stats.a"
  "libidlered_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
