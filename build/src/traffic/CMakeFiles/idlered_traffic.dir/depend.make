# Empty dependencies file for idlered_traffic.
# This may be replaced when dependencies are built.
