file(REMOVE_RECURSE
  "libidlered_traffic.a"
)
