file(REMOVE_RECURSE
  "CMakeFiles/idlered_traffic.dir/arterial.cpp.o"
  "CMakeFiles/idlered_traffic.dir/arterial.cpp.o.d"
  "CMakeFiles/idlered_traffic.dir/intersection.cpp.o"
  "CMakeFiles/idlered_traffic.dir/intersection.cpp.o.d"
  "CMakeFiles/idlered_traffic.dir/microsim.cpp.o"
  "CMakeFiles/idlered_traffic.dir/microsim.cpp.o.d"
  "libidlered_traffic.a"
  "libidlered_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
