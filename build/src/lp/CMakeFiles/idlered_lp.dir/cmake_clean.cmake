file(REMOVE_RECURSE
  "CMakeFiles/idlered_lp.dir/simplex.cpp.o"
  "CMakeFiles/idlered_lp.dir/simplex.cpp.o.d"
  "libidlered_lp.a"
  "libidlered_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
