# Empty dependencies file for idlered_lp.
# This may be replaced when dependencies are built.
