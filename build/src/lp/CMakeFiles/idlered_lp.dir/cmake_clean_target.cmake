file(REMOVE_RECURSE
  "libidlered_lp.a"
)
