
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/break_even.cpp" "src/costmodel/CMakeFiles/idlered_costmodel.dir/break_even.cpp.o" "gcc" "src/costmodel/CMakeFiles/idlered_costmodel.dir/break_even.cpp.o.d"
  "/root/repo/src/costmodel/emissions.cpp" "src/costmodel/CMakeFiles/idlered_costmodel.dir/emissions.cpp.o" "gcc" "src/costmodel/CMakeFiles/idlered_costmodel.dir/emissions.cpp.o.d"
  "/root/repo/src/costmodel/fleet_economics.cpp" "src/costmodel/CMakeFiles/idlered_costmodel.dir/fleet_economics.cpp.o" "gcc" "src/costmodel/CMakeFiles/idlered_costmodel.dir/fleet_economics.cpp.o.d"
  "/root/repo/src/costmodel/fuel.cpp" "src/costmodel/CMakeFiles/idlered_costmodel.dir/fuel.cpp.o" "gcc" "src/costmodel/CMakeFiles/idlered_costmodel.dir/fuel.cpp.o.d"
  "/root/repo/src/costmodel/wear.cpp" "src/costmodel/CMakeFiles/idlered_costmodel.dir/wear.cpp.o" "gcc" "src/costmodel/CMakeFiles/idlered_costmodel.dir/wear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
