src/costmodel/CMakeFiles/idlered_costmodel.dir/emissions.cpp.o: \
 /root/repo/src/costmodel/emissions.cpp /usr/include/stdc-predef.h \
 /root/repo/src/costmodel/emissions.h
