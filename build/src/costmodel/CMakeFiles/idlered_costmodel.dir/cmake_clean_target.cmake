file(REMOVE_RECURSE
  "libidlered_costmodel.a"
)
