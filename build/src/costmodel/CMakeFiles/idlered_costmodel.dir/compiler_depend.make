# Empty compiler generated dependencies file for idlered_costmodel.
# This may be replaced when dependencies are built.
