file(REMOVE_RECURSE
  "CMakeFiles/idlered_costmodel.dir/break_even.cpp.o"
  "CMakeFiles/idlered_costmodel.dir/break_even.cpp.o.d"
  "CMakeFiles/idlered_costmodel.dir/emissions.cpp.o"
  "CMakeFiles/idlered_costmodel.dir/emissions.cpp.o.d"
  "CMakeFiles/idlered_costmodel.dir/fleet_economics.cpp.o"
  "CMakeFiles/idlered_costmodel.dir/fleet_economics.cpp.o.d"
  "CMakeFiles/idlered_costmodel.dir/fuel.cpp.o"
  "CMakeFiles/idlered_costmodel.dir/fuel.cpp.o.d"
  "CMakeFiles/idlered_costmodel.dir/wear.cpp.o"
  "CMakeFiles/idlered_costmodel.dir/wear.cpp.o.d"
  "libidlered_costmodel.a"
  "libidlered_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
