file(REMOVE_RECURSE
  "CMakeFiles/idlered_util.dir/cli.cpp.o"
  "CMakeFiles/idlered_util.dir/cli.cpp.o.d"
  "CMakeFiles/idlered_util.dir/csv.cpp.o"
  "CMakeFiles/idlered_util.dir/csv.cpp.o.d"
  "CMakeFiles/idlered_util.dir/math.cpp.o"
  "CMakeFiles/idlered_util.dir/math.cpp.o.d"
  "CMakeFiles/idlered_util.dir/random.cpp.o"
  "CMakeFiles/idlered_util.dir/random.cpp.o.d"
  "CMakeFiles/idlered_util.dir/table.cpp.o"
  "CMakeFiles/idlered_util.dir/table.cpp.o.d"
  "libidlered_util.a"
  "libidlered_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlered_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
