file(REMOVE_RECURSE
  "libidlered_util.a"
)
