# Empty dependencies file for idlered_util.
# This may be replaced when dependencies are built.
