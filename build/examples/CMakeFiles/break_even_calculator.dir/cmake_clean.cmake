file(REMOVE_RECURSE
  "CMakeFiles/break_even_calculator.dir/break_even_calculator.cpp.o"
  "CMakeFiles/break_even_calculator.dir/break_even_calculator.cpp.o.d"
  "break_even_calculator"
  "break_even_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/break_even_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
