# Empty dependencies file for break_even_calculator.
# This may be replaced when dependencies are built.
