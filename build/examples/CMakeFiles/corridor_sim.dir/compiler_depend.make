# Empty compiler generated dependencies file for corridor_sim.
# This may be replaced when dependencies are built.
