file(REMOVE_RECURSE
  "CMakeFiles/corridor_sim.dir/corridor_sim.cpp.o"
  "CMakeFiles/corridor_sim.dir/corridor_sim.cpp.o.d"
  "corridor_sim"
  "corridor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corridor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
