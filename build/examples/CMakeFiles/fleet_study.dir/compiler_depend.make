# Empty compiler generated dependencies file for fleet_study.
# This may be replaced when dependencies are built.
