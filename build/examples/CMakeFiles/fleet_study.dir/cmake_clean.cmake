file(REMOVE_RECURSE
  "CMakeFiles/fleet_study.dir/fleet_study.cpp.o"
  "CMakeFiles/fleet_study.dir/fleet_study.cpp.o.d"
  "fleet_study"
  "fleet_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
