file(REMOVE_RECURSE
  "CMakeFiles/arterial_commute.dir/arterial_commute.cpp.o"
  "CMakeFiles/arterial_commute.dir/arterial_commute.cpp.o.d"
  "arterial_commute"
  "arterial_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arterial_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
