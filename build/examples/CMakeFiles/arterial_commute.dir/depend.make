# Empty dependencies file for arterial_commute.
# This may be replaced when dependencies are built.
