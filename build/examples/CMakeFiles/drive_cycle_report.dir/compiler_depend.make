# Empty compiler generated dependencies file for drive_cycle_report.
# This may be replaced when dependencies are built.
