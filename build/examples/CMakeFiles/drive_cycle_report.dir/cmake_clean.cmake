file(REMOVE_RECURSE
  "CMakeFiles/drive_cycle_report.dir/drive_cycle_report.cpp.o"
  "CMakeFiles/drive_cycle_report.dir/drive_cycle_report.cpp.o.d"
  "drive_cycle_report"
  "drive_cycle_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_cycle_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
