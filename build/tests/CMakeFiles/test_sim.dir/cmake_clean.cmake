file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_battery.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_battery.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_controller.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_controller.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_evaluator.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_evaluator.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_fleet_eval.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_fleet_eval.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_savings.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_savings.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
