file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_ecdf.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_ecdf.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_kaplan_meier.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_kaplan_meier.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_ks.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_ks.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
