
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_bootstrap.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o.d"
  "/root/repo/tests/stats/test_descriptive.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "/root/repo/tests/stats/test_ecdf.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_ecdf.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_ecdf.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_kaplan_meier.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_kaplan_meier.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_kaplan_meier.cpp.o.d"
  "/root/repo/tests/stats/test_ks.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_ks.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_ks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idlered_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/idlered_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idlered_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idlered_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idlered_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idlered_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/idlered_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/idlered_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
