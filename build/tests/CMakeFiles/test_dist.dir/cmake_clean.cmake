file(REMOVE_RECURSE
  "CMakeFiles/test_dist.dir/dist/test_adaptors.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_adaptors.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_empirical.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_empirical.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_mixture.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_mixture.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_parametric.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_parametric.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_quantile.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_quantile.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_short_stop_stats.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_short_stop_stats.cpp.o.d"
  "test_dist"
  "test_dist.pdb"
  "test_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
