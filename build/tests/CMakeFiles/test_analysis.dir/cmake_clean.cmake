file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_adversary.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_adversary.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_average_case.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_average_case.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_metrics.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_metrics.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_minimax.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_minimax.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
