file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/traffic/test_arterial.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_arterial.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_intersection.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_intersection.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_microsim.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_microsim.cpp.o.d"
  "test_traffic"
  "test_traffic.pdb"
  "test_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
