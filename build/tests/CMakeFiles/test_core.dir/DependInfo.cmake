
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_analytic.cpp" "tests/CMakeFiles/test_core.dir/core/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_analytic.cpp.o.d"
  "/root/repo/tests/core/test_costs.cpp" "tests/CMakeFiles/test_core.dir/core/test_costs.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_costs.cpp.o.d"
  "/root/repo/tests/core/test_crand.cpp" "tests/CMakeFiles/test_core.dir/core/test_crand.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_crand.cpp.o.d"
  "/root/repo/tests/core/test_decision_distribution.cpp" "tests/CMakeFiles/test_core.dir/core/test_decision_distribution.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_decision_distribution.cpp.o.d"
  "/root/repo/tests/core/test_estimator.cpp" "tests/CMakeFiles/test_core.dir/core/test_estimator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_estimator.cpp.o.d"
  "/root/repo/tests/core/test_multislope.cpp" "tests/CMakeFiles/test_core.dir/core/test_multislope.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_multislope.cpp.o.d"
  "/root/repo/tests/core/test_policies.cpp" "tests/CMakeFiles/test_core.dir/core/test_policies.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_policies.cpp.o.d"
  "/root/repo/tests/core/test_proposed.cpp" "tests/CMakeFiles/test_core.dir/core/test_proposed.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_proposed.cpp.o.d"
  "/root/repo/tests/core/test_region.cpp" "tests/CMakeFiles/test_core.dir/core/test_region.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_region.cpp.o.d"
  "/root/repo/tests/core/test_solver_lp.cpp" "tests/CMakeFiles/test_core.dir/core/test_solver_lp.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_solver_lp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idlered_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/idlered_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idlered_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idlered_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idlered_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idlered_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/idlered_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/idlered_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
