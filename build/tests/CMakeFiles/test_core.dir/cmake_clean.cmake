file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_analytic.cpp.o"
  "CMakeFiles/test_core.dir/core/test_analytic.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_costs.cpp.o"
  "CMakeFiles/test_core.dir/core/test_costs.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_crand.cpp.o"
  "CMakeFiles/test_core.dir/core/test_crand.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_decision_distribution.cpp.o"
  "CMakeFiles/test_core.dir/core/test_decision_distribution.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_estimator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_estimator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_multislope.cpp.o"
  "CMakeFiles/test_core.dir/core/test_multislope.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_policies.cpp.o"
  "CMakeFiles/test_core.dir/core/test_policies.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_proposed.cpp.o"
  "CMakeFiles/test_core.dir/core/test_proposed.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_region.cpp.o"
  "CMakeFiles/test_core.dir/core/test_region.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_solver_lp.cpp.o"
  "CMakeFiles/test_core.dir/core/test_solver_lp.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
