
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/traces/test_drive_cycles.cpp" "tests/CMakeFiles/test_traces.dir/traces/test_drive_cycles.cpp.o" "gcc" "tests/CMakeFiles/test_traces.dir/traces/test_drive_cycles.cpp.o.d"
  "/root/repo/tests/traces/test_fleet_generator.cpp" "tests/CMakeFiles/test_traces.dir/traces/test_fleet_generator.cpp.o" "gcc" "tests/CMakeFiles/test_traces.dir/traces/test_fleet_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idlered_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idlered_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idlered_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/idlered_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idlered_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idlered_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idlered_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idlered_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/idlered_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/idlered_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
