file(REMOVE_RECURSE
  "CMakeFiles/test_traces.dir/traces/test_drive_cycles.cpp.o"
  "CMakeFiles/test_traces.dir/traces/test_drive_cycles.cpp.o.d"
  "CMakeFiles/test_traces.dir/traces/test_fleet_generator.cpp.o"
  "CMakeFiles/test_traces.dir/traces/test_fleet_generator.cpp.o.d"
  "test_traces"
  "test_traces.pdb"
  "test_traces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
