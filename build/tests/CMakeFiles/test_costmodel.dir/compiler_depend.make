# Empty compiler generated dependencies file for test_costmodel.
# This may be replaced when dependencies are built.
