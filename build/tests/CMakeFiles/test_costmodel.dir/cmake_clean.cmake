file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel.dir/costmodel/test_costmodel.cpp.o"
  "CMakeFiles/test_costmodel.dir/costmodel/test_costmodel.cpp.o.d"
  "test_costmodel"
  "test_costmodel.pdb"
  "test_costmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
