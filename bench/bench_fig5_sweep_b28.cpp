// Reproduction of Figure 5: worst-case CR of every strategy as a function
// of the average stop length, for stop-start vehicles (B = 28 s). The
// workload follows the paper's methodology: the Chicago-shaped stop-length
// law rescaled to each target mean.
#include <cstdio>

#include "common/sweep.h"
#include "sim/fleet_eval.h"
#include "util/table.h"

int main() {
  using namespace idlered;

  std::printf("%s", util::banner("Figure 5: worst-case CR vs average stop "
                                 "length (B = 28 s)").c_str());
  const auto config = bench::default_sweep(28.0);
  const auto points = bench::run_traffic_sweep(config);
  std::vector<std::string> names;
  for (const auto& s : sim::standard_strategy_set()) names.push_back(s.name);
  bench::print_sweep(points, names, config.break_even);
  return 0;
}
