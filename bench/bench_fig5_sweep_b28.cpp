// Reproduction of Figure 5: worst-case CR of every strategy as a function
// of the average stop length, for stop-start vehicles (B = 28 s). The
// workload follows the paper's methodology: the Chicago-shaped stop-length
// law rescaled to each target mean.
//
// Evaluation runs on the parallel engine. The bench also times the legacy
// serial loop (sim::compare_strategies per point) and a 1-thread engine
// run over the *same* fleets, verifies the parallel CRs are bit-identical
// to the 1-thread engine run and consistent with the serial reference, and
// writes BENCH_fig5_sweep_b28.json.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/bench_run.h"
#include "common/sweep.h"
#include "sim/fleet_eval.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;
  bench::BenchRun run("fig5_sweep_b28", argc, argv);

  std::printf("%s", util::banner("Figure 5: worst-case CR vs average stop "
                                 "length (B = 28 s)").c_str());
  bench::SweepConfig config = bench::default_sweep(28.0);
  const auto fleets = bench::build_sweep_fleets(config);

  // Legacy serial reference: the pre-engine per-point loop.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<double>> serial_worst;
  for (const auto& pf : fleets) {
    const auto cmp = sim::compare_strategies(*pf.fleet, config.break_even,
                                             sim::standard_strategy_set());
    serial_worst.push_back(cmp.worst_cr());
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();

  // Engine, full width and 1 thread, over the same fleets.
  engine::EvalSession wide(bench::make_sweep_plan(config, fleets));
  const auto report = wide.run();
  bench::SweepConfig one = config;
  one.threads = 1;
  engine::EvalSession narrow(bench::make_sweep_plan(one, fleets));
  const auto report1 = narrow.run();

  const auto points = bench::sweep_points_from_report(config, report);
  bench::print_sweep(points, report.strategy_names, config.break_even);

  // Cross-checks: engine@N vs engine@1 must agree to the last bit; the
  // serial reference (trace-order statistics) to ~1 ulp.
  bool bitwise = true;
  double max_serial_gap = 0.0;
  for (std::size_t p = 0; p < report.points.size(); ++p) {
    const auto& vs = report.points[p].comparison.vehicles;
    const auto& vs1 = report1.points[p].comparison.vehicles;
    for (std::size_t v = 0; v < vs.size(); ++v)
      for (std::size_t s = 0; s < vs[v].cr.size(); ++s)
        if (vs[v].cr[s] != vs1[v].cr[s]) bitwise = false;
    const auto worst = report.points[p].comparison.worst_cr();
    for (std::size_t s = 0; s < worst.size(); ++s)
      max_serial_gap = std::max(max_serial_gap,
                                std::fabs(worst[s] - serial_worst[p][s]));
  }
  std::printf("\nengine threads=%d vs threads=1: %s\n", report.threads,
              bitwise ? "bit-identical" : "MISMATCH");
  std::printf("serial loop %.3f s  |  engine (%d threads) %.3f s  |  "
              "speedup %.2fx  |  max |engine - serial| CR gap %.2e\n",
              serial_s, report.threads, report.wall_seconds,
              report.wall_seconds > 0.0 ? serial_s / report.wall_seconds
                                        : 0.0,
              max_serial_gap);

  run.stage_report(report);
  util::JsonValue extra = util::JsonValue::object();
  extra.set("serial_wall_seconds", serial_s);
  extra.set("speedup_vs_serial",
            report.wall_seconds > 0.0 ? serial_s / report.wall_seconds : 0.0);
  extra.set("bitwise_thread_invariant", bitwise);
  extra.set("max_cr_gap_vs_serial", max_serial_gap);
  run.stage("cross_checks", std::move(extra));

  // Batched COA pass over every sweep fleet through one arena pool slot:
  // each point's per-vehicle vertex LPs in one solve_constrained_lp_batch
  // call, cross-checked against the closed form. Reported, not gated (the
  // figure's exit code stays the thread-invariance check above).
  lp::WorkspacePool pool(2, 3);
  std::size_t batch_solves = 0;
  std::size_t batch_mismatches = 0;
  double batch_seconds = 0.0;
  for (const auto& pf : fleets) {
    const bench::CoaBatchSummary batch =
        bench::coa_lp_batch(*pf.fleet, config.break_even, pool);
    batch_solves += batch.solves;
    batch_mismatches += batch.mismatches;
    batch_seconds += batch.seconds;
  }
  const double batch_rate = batch_seconds > 0.0
                                ? static_cast<double>(batch_solves) /
                                      batch_seconds
                                : 0.0;
  std::printf("batched COA LP: %zu solves across %zu points in %.4f s "
              "(%.0f solves/sec), %zu closed-form mismatches\n",
              batch_solves, fleets.size(), batch_seconds, batch_rate,
              batch_mismatches);
  util::JsonValue batch_payload = util::JsonValue::object();
  batch_payload.set("solves", static_cast<double>(batch_solves));
  batch_payload.set("seconds", batch_seconds);
  batch_payload.set("solves_per_sec", batch_rate);
  batch_payload.set("closed_form_mismatches",
                    static_cast<double>(batch_mismatches));
  run.stage("coa_lp_batch", std::move(batch_payload));
  return bitwise ? 0 : 1;
}
