// Ablation A6: the price of partial information.
//
// Three knowledge levels on the same stop-length law:
//   full law known     -> Fujiwara-Iwama optimal fixed threshold
//   (mu_B-, q_B+) only -> the paper's COA
//   nothing            -> N-Rand
// plus the LP adversary's certificate that COA's worst case is tight.
#include <cstdio>
#include <memory>

#include "common/bench_run.h"
#include "analysis/adversary.h"
#include "analysis/average_case.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "traces/area_profiles.h"
#include "util/math.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;

void run_case(const std::string& label,
              const dist::StopLengthDistribution& law, util::Table& table) {
  const auto stats = dist::ShortStopStats::from_distribution(law, kB);
  const double offline = stats.expected_offline_cost(kB);

  // Full knowledge: optimal threshold.
  const auto oracle = analysis::optimal_threshold(law, kB);

  // Two moments: COA's realized expected cost against the true law.
  core::ProposedPolicy coa(kB, stats);
  const double coa_cost =
      util::integrate(
          [&](double y) {
            return y <= 0.0 ? 0.0 : coa.expected_cost(y) * law.pdf(y);
          },
          0.0, kB, 1e-9) +
      law.tail_probability(kB) * coa.expected_cost(2.0 * kB);

  // No knowledge: N-Rand = e/(e-1) x offline, by the equalizer property.
  const double nrand_cost = util::kEOverEMinus1 * offline;

  table.add_row({label,
                 std::isinf(oracle.threshold)
                     ? std::string("NEV")
                     : util::fmt(oracle.threshold, 1) + " s",
                 util::fmt(oracle.expected_cr, 3),
                 core::to_string(coa.choice().strategy),
                 util::fmt(coa_cost / offline, 3),
                 util::fmt(nrand_cost / offline, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("ablation_average_case", argc, argv);
  std::printf("%s", util::banner("Ablation A6: full law vs two moments vs "
                                 "no information (B = 28 s)").c_str());
  util::Table table({"stop-length law", "oracle x*", "oracle CR",
                     "COA picks", "COA CR", "N-Rand CR"});
  run_case("Exponential(mean 12)", dist::Exponential(12.0), table);
  run_case("Exponential(mean 80)", dist::Exponential(80.0), table);
  run_case("Uniform[0, 40]", dist::Uniform(0.0, 40.0), table);
  {
    dist::Mixture bimodal({{0.7, std::make_shared<dist::Uniform>(0.0, 10.0)},
                           {0.3, std::make_shared<dist::Uniform>(60.0,
                                                                 120.0)}});
    run_case("bimodal 70/30", bimodal, table);
  }
  run_case("Chicago synthetic law",
           *traces::area_stop_distribution(traces::chicago()), table);
  std::printf("%s\n", table.str().c_str());

  std::printf("%s", util::banner("LP adversary certificate for COA").c_str());
  util::Table cert({"(mu/B, q)", "COA bound (closed form)",
                    "LP adversary value", "gap"});
  for (auto [mu_frac, q] : {std::pair{0.02, 0.3}, std::pair{0.2, 0.3},
                            std::pair{0.4, 0.2}, std::pair{0.1, 0.6}}) {
    dist::ShortStopStats s;
    s.mu_b_minus = mu_frac * kB;
    s.q_b_plus = q;
    const auto choice = core::choose_strategy(s, kB);
    core::ProposedPolicy coa(kB, s);
    analysis::AdversaryOptions opt;
    opt.grid_short = 1000;
    const auto adv = analysis::worst_case_adversary(coa, s, opt);
    cert.add_row({"(" + util::fmt(mu_frac, 2) + ", " + util::fmt(q, 2) + ")",
                  util::fmt(choice.expected_cost, 4),
                  util::fmt(adv.expected_cost, 4),
                  util::fmt(choice.expected_cost - adv.expected_cost, 5)});
  }
  std::printf("%s\n", cert.str().c_str());
  std::printf("Reading: the LP adversary attains (up to grid resolution) "
              "exactly the closed-form worst case — the paper's bounds are "
              "tight, and knowing the full law buys a further margin that "
              "two moments cannot.\n");
  return 0;
}
