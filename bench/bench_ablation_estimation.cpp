// Ablation A2: how sensitive is COA to errors in its side statistics?
//
// Part 1 (train/test): estimate (mu_B-, q_B+) from the first k stops of a
// vehicle's history, deploy the resulting policy on the remaining stops,
// and sweep k. Shows how much history a deployed controller needs.
//
// Part 2 (noise injection): perturb the true statistics multiplicatively
// and measure the realized CR against the unperturbed law — quantifying the
// robustness margin around the paper's exact-statistics assumption.
#include <algorithm>
#include <cstdio>

#include "common/bench_run.h"
#include "core/proposed.h"
#include "dist/distribution.h"
#include "sim/evaluator.h"
#include "traces/fleet_generator.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("ablation_estimation", argc, argv);
  std::printf("%s", util::banner("Ablation A2.1: training-history length "
                                 "(B = 28 s)").c_str());

  // One big pool of Chicago-like stops, split train/test.
  const auto law = traces::area_stop_distribution(traces::chicago());
  util::Rng rng(777);
  const auto pool = law->sample_many(rng, 120000);
  const std::vector<double> test(pool.begin() + 20000, pool.end());

  util::Table t1({"train stops k", "est mu_B-/B", "est q_B+", "COA picks",
                  "test CR", "oracle-stats CR"});
  const auto oracle_stats = dist::ShortStopStats::from_sample(test, kB);
  core::ProposedPolicy oracle(kB, oracle_stats);
  const double oracle_cr = sim::evaluate(oracle, test).cr();

  for (int k : {3, 5, 10, 20, 50, 100, 500, 2000, 20000}) {
    const std::vector<double> train(pool.begin(), pool.begin() + k);
    const auto est = dist::ShortStopStats::from_sample(train, kB);
    core::ProposedPolicy coa(kB, est);
    t1.add_row({std::to_string(k), util::fmt(est.mu_b_minus / kB, 3),
                util::fmt(est.q_b_plus, 3),
                core::to_string(coa.choice().strategy),
                util::fmt(sim::evaluate(coa, test).cr(), 4),
                util::fmt(oracle_cr, 4)});
  }
  std::printf("%s\n", t1.str().c_str());

  std::printf("%s", util::banner("Ablation A2.2: multiplicative noise on "
                                 "the statistics").c_str());
  util::Table t2({"noise factor on (mu,q)", "COA picks", "realized CR",
                  "degradation vs exact"});
  const auto exact = dist::ShortStopStats::from_sample(test, kB);
  const double exact_cr = oracle_cr;
  for (double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    dist::ShortStopStats noisy;
    noisy.mu_b_minus =
        util::clamp(exact.mu_b_minus * f, 0.0,
                    kB * (1.0 - util::clamp(exact.q_b_plus * f, 0.0, 1.0)));
    noisy.q_b_plus = util::clamp(exact.q_b_plus * f, 0.0, 1.0);
    core::ProposedPolicy coa(kB, noisy);
    const double cr = sim::evaluate(coa, test).cr();
    t2.add_row({util::fmt(f, 2), core::to_string(coa.choice().strategy),
                util::fmt(cr, 4), util::fmt(cr - exact_cr, 4)});
  }
  std::printf("%s\n", t2.str().c_str());
  std::printf("Reading: tens of stops of history already recover near-oracle "
              "CR, and even 2-4x mis-estimation degrades gracefully — the "
              "selection map of Figure 1(a) has wide, stable regions.\n");
  return 0;
}
