// Reproduction of Figure 3: the stop-length probability distribution of the
// three synthetic NREL-like areas, plus the paper's Kolmogorov-Smirnov check
// that the laws are *not* exponential (heavy tails).
#include <cstdio>

#include "common/bench_run.h"
#include "sim/trace.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"
#include "traces/fleet_generator.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("fig3_distributions", argc, argv);
  using namespace idlered;

  util::Rng rng(20140601);
  util::Table summary({"area", "vehicles", "stops", "mean stop (s)",
                       "median (s)", "P{y >= 28}", "P{y >= 47}",
                       "KS vs exponential", "p-value"});

  for (const auto& area : traces::all_areas()) {
    util::Rng area_rng = rng.fork(std::hash<std::string>{}(area.name));
    const auto fleet = traces::generate_area_fleet(area, area_rng);
    const auto stops = sim::pooled_stops(fleet);

    std::printf("%s", util::banner("Figure 3: stop-length distribution, " +
                                   area.name).c_str());
    stats::Histogram hist(0.0, 240.0, 24);
    hist.add_all(stops);
    std::printf("%s\n", hist.ascii(48).c_str());

    const auto ks = stats::ks_test_exponential(stops);
    double at_28 = 0.0;
    double at_47 = 0.0;
    for (double y : stops) {
      if (y >= 28.0) at_28 += 1.0;
      if (y >= 47.0) at_47 += 1.0;
    }
    const auto n = static_cast<double>(stops.size());
    summary.add_row(
        {area.name, std::to_string(fleet.size()),
         std::to_string(stops.size()), util::fmt(stats::mean(stops), 1),
         util::fmt(stats::median(stops), 1), util::fmt(at_28 / n, 3),
         util::fmt(at_47 / n, 3), util::fmt(ks.statistic, 4),
         ks.p_value < 1e-12 ? "<1e-12" : util::fmt(ks.p_value, 6)});
  }

  std::printf("%s", util::banner("Figure 3 summary").c_str());
  std::printf("%s\n", summary.str().c_str());
  std::printf("Paper claim: all three areas' distributions differ from the "
              "exponential law by the KS test (heavy tails). Reproduced when "
              "every p-value above is ~0.\n");
  return 0;
}
