// Streaming decision-service throughput under a fault sweep.
//
// Four phases against src/serve/ (BENCH_serve_throughput.json, schema v2):
//
//   1. nominal        — a paced fleet stream the service keeps up with:
//      sustained decisions/sec and p99 submit->decision latency.
//   2. burst overload — producers suddenly run ~10x faster than the pump.
//      The invariants under test: queues stay bounded (backpressure
//      refuses, nothing grows), the shedder walks the fallback ladder
//      down instead of stalling, and once the burst passes the ceiling
//      re-promotes to COA through the jittered backoff — never snapping.
//   3. shard stall    — one shard pinned at capacity despite draining
//      (tiny drain batch). The NEV tripwire must fire, decisions become
//      O(1) "keep idling", and the shard must recover once traffic calms.
//   4. kill + recover — a durable service is destroyed mid-stream with no
//      shutdown (the WAL-flush-before-emit barrier makes this equivalent
//      to a crash at a batch boundary), then recovered: the replayed +
//      resumed decision stream must be bit-identical to an uninterrupted
//      run, and the recovery wall time is reported.
//
// Exit status is non-zero if any invariant fails — CI treats this bench
// as a soak test, not just a stopwatch.
//
// Usage: bench_serve_throughput [events] [vehicles]
//   events    nominal-phase event count      (default 60000)
//   vehicles  fleet size across all phases   (default 64)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/bench_run.h"
#include "obs/log_histogram.h"
#include "robust/fallback.h"
#include "serve/service.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;
using clock_type = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20140601;  // DAC'14 conference date
constexpr double kBreakEven = 60.0;

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    ++failures;
    std::printf("INVARIANT FAILED: %s\n", what);
  }
}

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Deterministic stop stream: lognormal-ish body via the repo Rng, strictly
/// increasing per-vehicle timestamps.
struct FleetSource {
  explicit FleetSource(std::size_t vehicles, std::uint64_t seed)
      : rng(seed), next_seq(vehicles, 0), next_ts(vehicles, 0.0) {}

  serve::StopEvent next(std::size_t i) {
    const std::uint64_t v = 1000 + i;
    serve::StopEvent e;
    e.vehicle = v;
    e.seq = ++next_seq[i];
    next_ts[i] += 1.0 + rng.uniform() * 30.0;
    e.timestamp_s = next_ts[i];
    e.stop_length_s = rng.lognormal(2.2, 0.9);
    return e;
  }

  util::Rng rng;
  std::vector<std::uint64_t> next_seq;
  std::vector<double> next_ts;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  return v[static_cast<std::size_t>(std::llround(idx))];
}

bool all_shards_at(const serve::DecisionService& svc,
                   robust::ControllerMode mode) {
  for (std::size_t i = 0; i < svc.num_shards(); ++i)
    if (svc.shard(i).shedder().ceiling() != mode) return false;
  return true;
}

robust::ControllerMode worst_ceiling(const serve::DecisionService& svc) {
  auto worst = robust::ControllerMode::kProposed;
  for (std::size_t i = 0; i < svc.num_shards(); ++i) {
    const auto c = svc.shard(i).shedder().ceiling();
    if (static_cast<int>(c) > static_cast<int>(worst)) worst = c;
  }
  return worst;
}

// ---- phase 1: nominal throughput ------------------------------------------

util::JsonValue phase_nominal(std::size_t events, std::size_t vehicles,
                              util::Table& table, obs::Exporter* exporter) {
  serve::ServeConfig cfg;
  cfg.num_shards = 4;
  cfg.threads = 2;
  cfg.break_even = kBreakEven;
  cfg.warmup_stops = 8;
  cfg.queue_capacity = 512;
  cfg.drain_batch = 128;
  cfg.seed = kSeed;
  serve::DecisionService svc(cfg);
  FleetSource source(vehicles, kSeed + 1);

  // Pace: submit one pump's worth of events, then pump. Latency is the
  // submit->decision sojourn, keyed on (vehicle, seq).
  std::map<std::pair<std::uint64_t, std::uint64_t>, clock_type::time_point>
      submitted_at;
  std::vector<double> latencies;
  latencies.reserve(events);
  // The same latency stream through the log-bucketed estimator, so the
  // quantile error bound is checked against the exact offline sort below.
  obs::LogHistogram latency_hist;
  std::vector<serve::Decision> out;
  out.reserve(events + 64);

  const std::size_t per_pump = cfg.num_shards * cfg.drain_batch / 2;
  const auto t0 = clock_type::now();
  std::size_t submitted = 0, prev_emitted = 0;
  while (submitted < events) {
    const std::size_t n = std::min(per_pump, events - submitted);
    for (std::size_t i = 0; i < n; ++i) {
      const serve::StopEvent e = source.next(submitted % vehicles);
      const auto verdict = svc.submit(e);
      check(verdict == serve::Admit::kAccepted,
            "nominal: paced stream must never hit backpressure");
      submitted_at[{e.vehicle, e.seq}] = clock_type::now();
      ++submitted;
    }
    svc.pump(out);
    const auto now = clock_type::now();
    for (std::size_t i = prev_emitted; i < out.size(); ++i) {
      const auto it = submitted_at.find({out[i].vehicle, out[i].seq});
      if (it != submitted_at.end()) {
        const double lat =
            std::chrono::duration<double>(now - it->second).count();
        latencies.push_back(lat);
        latency_hist.observe(lat);
        submitted_at.erase(it);
      }
    }
    prev_emitted = out.size();
    if (exporter != nullptr) exporter->tick(util::monotonic_seconds());
  }
  svc.drain_all(out);
  const double wall = seconds_since(t0);

  check(out.size() == events, "nominal: every event must yield a decision");
  check(all_shards_at(svc, robust::ControllerMode::kProposed),
        "nominal: paced load must not shed");
  std::size_t decided = 0;
  for (const auto& d : out)
    if (d.outcome == serve::Outcome::kDecided) ++decided;
  check(decided == events, "nominal: clean stream must decide every event");

  const double per_sec = static_cast<double>(out.size()) / wall;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  // The LogHistogram acceptance bound: the estimator's p99 must agree
  // with the exact offline sort within the documented relative error
  // (both use the rank convention round(p * (n - 1))).
  const obs::LogHistogramSnapshot lat_snap = latency_hist.snapshot();
  const double est_p99 = lat_snap.quantile(0.99);
  const double bound = lat_snap.config.rel_error;
  check(lat_snap.count == latencies.size(),
        "nominal: the estimator must see every measured latency");
  check(p99 > 0.0 && std::abs(est_p99 - p99) <= bound * p99,
        "nominal: estimated p99 must sit within the documented relative "
        "error of the exact sort");

  table.add_row({"nominal", util::fmt(wall, 3),
                 util::fmt(per_sec, 0), util::fmt(p50 * 1e6, 1),
                 util::fmt(p99 * 1e6, 1), "COA"});

  util::JsonValue j = util::JsonValue::object();
  j.set("events", events);
  j.set("wall_seconds", wall);
  j.set("decisions_per_sec", per_sec);
  j.set("latency_p50_us", p50 * 1e6);
  j.set("latency_p99_us", p99 * 1e6);
  j.set("latency_p99_est_us", est_p99 * 1e6);
  j.set("latency_rel_error_bound", bound);
  j.set("latency_quantiles", lat_snap.to_json());
  return j;
}

// ---- phase 2: 10x burst overload ------------------------------------------

util::JsonValue phase_burst(std::size_t vehicles, util::Table& table) {
  serve::ServeConfig cfg;
  cfg.num_shards = 4;
  cfg.threads = 2;
  cfg.break_even = kBreakEven;
  cfg.warmup_stops = 8;
  cfg.queue_capacity = 128;
  cfg.drain_batch = 16;
  cfg.seed = kSeed;
  cfg.shed.stall_pumps = 6;
  serve::DecisionService svc(cfg);
  FleetSource source(vehicles, kSeed + 2);

  std::vector<serve::Decision> out;

  // Warm the accumulators so the fleet is genuinely on the COA rung when
  // the burst hits.
  for (int round = 0; round < 16; ++round) {
    for (std::size_t i = 0; i < vehicles; ++i)
      (void)svc.submit(source.next(i));
    svc.pump(out);
  }
  svc.drain_all(out);
  check(all_shards_at(svc, robust::ControllerMode::kProposed),
        "burst: warm-up must end on the COA rung");
  out.clear();

  // Burst: ~10x the drain rate. Producers keep submitting through
  // refusals (a real ingestor would retry; here refusal count is the
  // backpressure signal under test).
  const std::size_t bound = cfg.num_shards * cfg.queue_capacity;
  const std::size_t burst_per_pump = 10 * cfg.num_shards * cfg.drain_batch;
  auto worst = robust::ControllerMode::kProposed;
  std::size_t max_queued = 0;
  const auto t0 = clock_type::now();
  for (int round = 0; round < 60; ++round) {
    for (std::size_t i = 0; i < burst_per_pump; ++i)
      (void)svc.submit(source.next(i % vehicles));
    max_queued = std::max(max_queued, svc.queued());
    svc.pump(out);
    const auto c = worst_ceiling(svc);
    if (static_cast<int>(c) > static_cast<int>(worst)) worst = c;
  }
  const double burst_wall = seconds_since(t0);
  const std::size_t burst_decisions = out.size();

  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < svc.num_shards(); ++i)
    rejected += svc.shard(i).queue().rejected();
  check(rejected > 0, "burst: overload must surface as refusals");
  check(max_queued <= bound, "burst: queues must stay bounded");
  check(static_cast<int>(worst) >=
            static_cast<int>(robust::ControllerMode::kDet),
        "burst: sustained overload must walk down the ladder");

  // Calm: pump with no new traffic until the ceilings re-promote to COA
  // through the jittered backoff (bounded wait, hence the pump cap).
  int recovery_pumps = 0;
  while (!all_shards_at(svc, robust::ControllerMode::kProposed) &&
         recovery_pumps < 5000) {
    svc.pump(out);
    ++recovery_pumps;
  }
  check(all_shards_at(svc, robust::ControllerMode::kProposed),
        "burst: shards must re-promote to COA after the burst");
  std::uint64_t deferred = 0;
  for (std::size_t i = 0; i < svc.num_shards(); ++i)
    deferred += svc.shard(i).shedder().deferred_promotions();
  check(deferred > 0, "burst: re-promotion must wait out the backoff");

  table.add_row({"burst 10x", util::fmt(burst_wall, 3),
                 util::fmt(static_cast<double>(burst_decisions) / burst_wall,
                           0),
                 "-", "-", robust::to_string(worst)});

  util::JsonValue j = util::JsonValue::object();
  j.set("burst_decisions", burst_decisions);
  j.set("burst_wall_seconds", burst_wall);
  j.set("rejected_submits", static_cast<double>(rejected));
  j.set("max_queued", max_queued);
  j.set("queue_bound", bound);
  j.set("worst_ceiling", robust::to_string(worst));
  j.set("recovery_pumps", recovery_pumps);
  j.set("deferred_promotions", static_cast<double>(deferred));
  return j;
}

// ---- phase 3: shard stall -------------------------------------------------

util::JsonValue phase_stall(util::Table& table) {
  serve::ServeConfig cfg;
  cfg.num_shards = 1;
  cfg.threads = 1;
  cfg.break_even = kBreakEven;
  cfg.warmup_stops = 4;
  cfg.queue_capacity = 64;
  cfg.drain_batch = 4;  // drains cannot keep up: the stall tripwire's case
  cfg.seed = kSeed;
  cfg.shed.stall_pumps = 4;
  serve::DecisionService svc(cfg);
  FleetSource source(8, kSeed + 3);

  std::vector<serve::Decision> out;
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < 8; ++i) (void)svc.submit(source.next(i));
    svc.pump(out);
  }
  svc.drain_all(out);
  out.clear();

  // Pin the queue: refill to capacity before every pump.
  bool saw_stall = false;
  const auto t0 = clock_type::now();
  for (int round = 0; round < 40; ++round) {
    while (svc.submit(source.next(static_cast<std::size_t>(round) % 8)) ==
           serve::Admit::kAccepted) {
    }
    svc.pump(out);
    saw_stall = saw_stall || svc.shard(0).shedder().stalled();
  }
  const double stall_wall = seconds_since(t0);
  check(saw_stall, "stall: a pinned queue must trip the NEV tripwire");
  check(svc.queued() <= cfg.queue_capacity,
        "stall: the pinned queue must stay bounded");

  // While stalled the decisions are the O(1) NEV rung.
  std::size_t nev = 0;
  for (const auto& d : out)
    if (d.outcome == serve::Outcome::kDecided &&
        d.rung == robust::ControllerMode::kNev)
      ++nev;
  check(nev > 0, "stall: stalled decisions must ride the NEV rung");
  for (const auto& d : out)
    if (d.rung == robust::ControllerMode::kNev &&
        d.outcome == serve::Outcome::kDecided)
      check(std::isinf(d.threshold),
            "stall: NEV thresholds must be +inf (never shut off)");

  // Calm traffic: the shard must leave NEV and climb back.
  int recovery_pumps = 0;
  while (svc.shard(0).shedder().ceiling() !=
             robust::ControllerMode::kProposed &&
         recovery_pumps < 5000) {
    svc.pump(out);
    ++recovery_pumps;
  }
  check(!svc.shard(0).shedder().stalled(),
        "stall: calm traffic must clear the stall");
  check(svc.shard(0).shedder().ceiling() ==
            robust::ControllerMode::kProposed,
        "stall: the shard must re-promote to COA after the stall");

  table.add_row({"shard stall", util::fmt(stall_wall, 3), "-", "-", "-",
                 "NEV"});

  util::JsonValue j = util::JsonValue::object();
  j.set("tripped_nev", saw_stall);
  j.set("nev_decisions", nev);
  j.set("recovery_pumps", recovery_pumps);
  return j;
}

// ---- phase 4: kill + recover ----------------------------------------------

util::JsonValue phase_kill_recover(std::size_t vehicles, util::Table& table) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("idlered_bench_serve_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  serve::ServeConfig cfg;
  cfg.num_shards = 3;
  cfg.threads = 2;
  cfg.break_even = kBreakEven;
  cfg.warmup_stops = 4;
  cfg.queue_capacity = 512;
  cfg.drain_batch = 64;
  cfg.seed = kSeed;
  cfg.durable_dir = dir.string();
  cfg.snapshot_every = 32;

  const std::size_t total_events = 4000;
  const std::size_t kill_at = 1700;

  // Reference: the same stream through an uninterrupted in-memory service.
  std::vector<serve::Decision> reference;
  {
    serve::ServeConfig ref = cfg;
    ref.durable_dir.clear();
    ref.snapshot_every = 0;
    serve::DecisionService svc(ref);
    FleetSource source(vehicles, kSeed + 4);
    for (std::size_t i = 0; i < total_events; ++i) {
      (void)svc.submit(source.next(i % vehicles));
      if (i % 64 == 63) svc.pump(reference);
    }
    svc.drain_all(reference);
  }

  // Crashed run: destroy the service mid-stream with no shutdown. The WAL
  // is flushed before decisions are emitted, so this is exactly a crash at
  // a batch boundary.
  std::map<std::pair<std::uint64_t, std::uint64_t>, serve::Decision> merged;
  auto merge = [&merged](const std::vector<serve::Decision>& ds) {
    for (const auto& d : ds) merged[{d.vehicle, d.seq}] = d;
  };
  {
    serve::DecisionService svc(cfg);
    FleetSource source(vehicles, kSeed + 4);
    std::vector<serve::Decision> pre;
    for (std::size_t i = 0; i < kill_at; ++i) {
      (void)svc.submit(source.next(i % vehicles));
      if (i % 64 == 63) svc.pump(pre);
    }
    merge(pre);
    // svc destroyed here: crash.
  }

  const auto t0 = clock_type::now();
  auto recovered = serve::DecisionService::recover(cfg);
  const double recover_wall = seconds_since(t0);
  merge(recovered.replayed);

  // Resume: replay the same deterministic source, skipping everything the
  // recovered service already applied (the crash-resume handshake).
  std::vector<serve::Decision> post;
  {
    FleetSource source(vehicles, kSeed + 4);
    for (std::size_t i = 0; i < total_events; ++i) {
      const serve::StopEvent e = source.next(i % vehicles);
      if (e.seq <= recovered.service->last_applied_seq(e.vehicle)) continue;
      (void)recovered.service->submit(e);
      if (i % 64 == 63) recovered.service->pump(post);
    }
    recovered.service->drain_all(post);
  }
  merge(post);

  check(merged.size() == reference.size(),
        "recover: the union stream must cover every event exactly once");
  bool identical = merged.size() == reference.size();
  for (const auto& d : reference) {
    const auto it = merged.find({d.vehicle, d.seq});
    if (it == merged.end() || !serve::bit_identical(it->second, d)) {
      identical = false;
      break;
    }
  }
  check(identical,
        "recover: replayed + resumed decisions must be bit-identical to an "
        "uninterrupted run");

  table.add_row({"kill+recover", util::fmt(recover_wall, 3), "-", "-", "-",
                 identical ? "bit-identical" : "MISMATCH"});
  fs::remove_all(dir);

  util::JsonValue j = util::JsonValue::object();
  j.set("events_before_kill", kill_at);
  j.set("events_total", total_events);
  j.set("replayed_decisions", recovered.replayed.size());
  j.set("recover_wall_seconds", recover_wall);
  j.set("bit_identical", identical);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("serve_throughput", argc, argv);

  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--trace", 0) == 0 || arg.rfind("--export", 0) == 0)
      continue;
    pos.push_back(argv[i]);
  }
  std::size_t events = 60000;
  std::size_t vehicles = 64;
  if (!pos.empty()) events = static_cast<std::size_t>(std::atoll(pos[0]));
  if (pos.size() > 1)
    vehicles = static_cast<std::size_t>(std::atoll(pos[1]));

  std::printf("%s", util::banner("Streaming decision service: throughput "
                                 "and fault sweep")
                        .c_str());

  util::Table table({"phase", "wall s", "decisions/s", "p50 us", "p99 us",
                     "worst rung"});
  util::JsonValue payload = util::JsonValue::object();
  payload.set("events", events);
  payload.set("vehicles", vehicles);
  payload.set("nominal",
              phase_nominal(events, vehicles, table, run.exporter()));
  payload.set("burst", phase_burst(vehicles, table));
  payload.set("stall", phase_stall(table));
  payload.set("kill_recover", phase_kill_recover(vehicles, table));
  payload.set("invariant_failures", failures);
  run.stage("results", std::move(payload));

  std::printf("%s\n", table.str().c_str());
  std::printf("invariant failures: %d\n", failures);
  return failures == 0 ? 0 : 1;
}
