// Fault-sweep robustness bench: achieved CR vs fault rate for the guarded
// (robust-mode) AdaptiveController against the unguarded legacy path.
//
// Every stop is pushed through a seed-driven robust::FaultInjector; costs
// are always charged against the TRUE stop lengths while the controller
// only ever sees the corrupted readings — the separation a real vehicle
// lives with. Four views:
//
//   1. mixed-fault rate sweep      — the unguarded path aborts on the first
//      NaN/negative glitch; the guarded path walks the fallback ladder and
//      keeps a finite, bounded CR at every rate.
//   2. actuation-severity sweep    — no sensor glitches at all; the
//      unguarded CR grows without bound in the cranking cost while the
//      guarded controller latches NEV once the starter looks unreliable.
//   3. per-fault-type ablation     — which rung absorbs which fault.
//   4. weak-battery scenario       — the SOC guard forces NEV at the floor
//      instead of stranding the vehicle.
//
// All schedules are reproducible from the single seed below (the
// determinism line re-derives one schedule and compares element-wise).
#include <cmath>
#include <cstdio>
#include <exception>
#include <optional>
#include <vector>

#include "common/bench_run.h"
#include "dist/parametric.h"
#include "robust/fault_model.h"
#include "sim/controller.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;
constexpr std::uint64_t kSeed = 20140601;  // DAC'14 conference date
constexpr std::size_t kStops = 20000;

struct RunResult {
  bool aborted = false;
  std::size_t abort_stop = 0;
  double cr = 0.0;
  double mode_frac[4] = {0, 0, 0, 0};  ///< robust::ControllerMode order
  robust::ControllerMode final_mode = robust::ControllerMode::kNRand;
  robust::HealthState final_health = robust::HealthState::kHealthy;
  double anomaly_rate = 0.0;
  std::size_t rejected = 0;
  std::size_t soc_floor_hits = 0;  ///< stops started below the SOC floor
  double final_soc = 1.0;
};

RunResult run_stream(const std::vector<double>& stops,
                     const robust::FaultProfile& profile, bool guarded,
                     std::optional<sim::BatteryModel> battery = {},
                     double drive_s_per_stop = 0.0) {
  sim::AdaptiveController::Config cfg;
  cfg.break_even = kB;
  cfg.warmup_stops = 30;
  cfg.decay_lambda = 0.995;
  cfg.robust.enabled = guarded;
  cfg.battery = battery;
  sim::AdaptiveController ctl(cfg);
  robust::FaultInjector injector(profile, kSeed);
  util::Rng rng(kSeed + 1);

  RunResult r;
  std::size_t processed = 0;
  for (double y : stops) {
    const auto reading = injector.corrupt(y);
    r.mode_frac[static_cast<int>(ctl.mode())] += 1.0;
    if (battery && ctl.soc() < battery->min_soc) ++r.soc_floor_hits;
    try {
      ctl.process_stop_faulted(y, reading, rng);
    } catch (const std::exception&) {
      r.aborted = true;
      r.abort_stop = processed;
      break;
    }
    if (drive_s_per_stop > 0.0) ctl.note_drive(drive_s_per_stop);
    ++processed;
  }
  for (double& f : r.mode_frac) f /= static_cast<double>(stops.size());
  r.cr = ctl.totals().cr();
  r.final_mode = ctl.mode();
  r.final_health = ctl.health();
  r.anomaly_rate = ctl.health_monitor().anomaly_rate();
  r.rejected = ctl.guard_counts().anomalies();
  r.final_soc = ctl.soc();
  return r;
}

std::string cr_cell(const RunResult& r) {
  if (r.aborted)
    return "ABORT@" + std::to_string(r.abort_stop) + " (threw)";
  if (!std::isfinite(r.cr)) return "unbounded";
  return util::fmt(r.cr, 3);
}

std::vector<double> urban_stops() {
  // Urban arterial mix: lognormal body, mean ~13.5 s, ~10% of stops at or
  // beyond B = 28 s — every strategy region is in play.
  dist::LogNormal law(2.2, 0.9);
  util::Rng rng(kSeed + 2);
  return law.sample_many(rng, kStops);
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("robustness_faults", argc, argv);
  std::printf("%s", util::banner("Robustness: fault-sweep of the adaptive "
                                 "stop-start controller (B = 28 s)")
                        .c_str());

  const auto stops = urban_stops();
  const double clean_cr =
      run_stream(stops, robust::FaultProfile{}, /*guarded=*/false).cr;
  std::printf("workload: %zu lognormal(2.2, 0.9) stops | fault-free "
              "adaptive CR = %.3f\n\n",
              stops.size(), clean_cr);

  std::printf("--- 1. mixed-fault rate sweep (noise + quantization + stuck "
              "+ drop + NaN + negative + delay + restart faults) ---\n");
  util::Table t1({"fault rate", "unguarded CR", "guarded CR", "final mode",
                  "health", "rejected", "NEV%"});
  for (double rate : {0.0, 0.05, 0.10, 0.20, 0.40, 0.80}) {
    const auto profile = robust::FaultProfile::scaled(rate);
    const auto raw = run_stream(stops, profile, /*guarded=*/false);
    const auto grd = run_stream(stops, profile, /*guarded=*/true);
    t1.add_row({util::fmt(rate, 2), cr_cell(raw), cr_cell(grd),
                robust::to_string(grd.final_mode),
                robust::to_string(grd.final_health),
                std::to_string(grd.rejected),
                util::fmt(100.0 * grd.mode_frac[3], 1)});
  }
  std::printf("%s\n", t1.str().c_str());

  std::printf("--- 2. actuation-severity sweep (50%% of engine-offs hit a "
              "failing starter; no sensor glitches) ---\n");
  util::Table t2({"delay (s)", "cranks", "unguarded CR", "guarded CR",
                  "guarded final mode"});
  for (int sev : {0, 1, 2, 4, 8}) {
    robust::FaultProfile p;
    if (sev > 0) {
      p.actuation_delay_prob = 0.5;
      p.actuation_delay_s = 4.0 * sev;
      p.restart_failure_prob = 0.5;
      p.restart_failure_attempts = 1 + 3 * sev;
    }
    const auto raw = run_stream(stops, p, /*guarded=*/false);
    const auto grd = run_stream(stops, p, /*guarded=*/true);
    t2.add_row({util::fmt(p.actuation_delay_s * (sev > 0), 0),
                std::to_string(sev > 0 ? p.restart_failure_attempts : 1),
                cr_cell(raw), cr_cell(grd),
                robust::to_string(grd.final_mode)});
  }
  std::printf("%s\n", t2.str().c_str());

  std::printf("--- 3. per-fault-type ablation (one fault kind at a time, "
              "~15%% of stops) ---\n");
  struct Case {
    const char* name;
    robust::FaultProfile p;
  };
  std::vector<Case> cases;
  {
    Case c{"additive noise (sd 10 s)", {}};
    c.p.additive_noise_prob = 0.15;
    c.p.additive_noise_sd_s = 10.0;
    cases.push_back(c);
    c = {"multiplicative (sd 0.5)", {}};
    c.p.multiplicative_noise_prob = 0.15;
    c.p.multiplicative_noise_sd = 0.5;
    cases.push_back(c);
    c = {"quantization (15 s grid)", {}};
    c.p.quantization_prob = 0.15;
    c.p.quantization_step_s = 15.0;
    cases.push_back(c);
    c = {"stuck sensor (long runs)", {}};
    c.p.stuck_prob = 0.03;
    c.p.stuck_release_prob = 0.05;
    cases.push_back(c);
    c = {"dropped readings", {}};
    c.p.drop_prob = 0.15;
    cases.push_back(c);
    c = {"NaN glitches", {}};
    c.p.nan_prob = 0.15;
    cases.push_back(c);
    c = {"negative glitches", {}};
    c.p.negative_prob = 0.15;
    cases.push_back(c);
    c = {"actuation delay (8 s)", {}};
    c.p.actuation_delay_prob = 0.15;
    c.p.actuation_delay_s = 8.0;
    cases.push_back(c);
    c = {"restart failure (x4)", {}};
    c.p.restart_failure_prob = 0.15;
    c.p.restart_failure_attempts = 4;
    cases.push_back(c);
  }
  util::Table t3({"fault", "unguarded CR", "guarded CR", "final mode",
                  "anomaly rate"});
  for (const auto& c : cases) {
    const auto raw = run_stream(stops, c.p, /*guarded=*/false);
    const auto grd = run_stream(stops, c.p, /*guarded=*/true);
    t3.add_row({c.name, cr_cell(raw), cr_cell(grd),
                robust::to_string(grd.final_mode),
                util::fmt(grd.anomaly_rate, 3)});
  }
  std::printf("%s\n", t3.str().c_str());

  std::printf("--- 4. weak battery in jammed traffic (40 Wh window, 800 W "
              "house load, 20 s drives): SOC guard ---\n");
  // Exponential(60 s) stops: engine-off time far exceeds the recharge
  // window, so a controller that ignores the battery drains it flat.
  std::vector<double> jam;
  {
    dist::Exponential law(60.0);
    util::Rng rng(kSeed + 3);
    jam = law.sample_many(rng, 10000);
  }
  sim::BatteryModel weak;
  weak.capacity_wh = 40.0;
  weak.accessory_draw_w = 800.0;
  weak.recharge_w = 600.0;
  weak.min_soc = 0.30;
  weak.initial_soc = 0.60;
  util::Table t4({"controller", "CR", "stops below SOC floor", "NEV%",
                  "final SOC"});
  for (bool guarded : {false, true}) {
    const auto r = run_stream(jam, robust::FaultProfile{}, guarded, weak,
                              /*drive_s_per_stop=*/20.0);
    t4.add_row({guarded ? "guarded (SOC ladder)" : "unguarded",
                cr_cell(r), std::to_string(r.soc_floor_hits),
                util::fmt(100.0 * r.mode_frac[3], 1), util::fmt(r.final_soc, 2)});
  }
  std::printf("%s\n", t4.str().c_str());

  // Reproducibility: the same seed must yield the identical fault schedule.
  {
    const auto p = robust::FaultProfile::scaled(0.3);
    robust::FaultInjector a(p, kSeed), b(p, kSeed);
    const auto sa = a.corrupt_stream(stops);
    const auto sb = b.corrupt_stream(stops);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      const bool same =
          sa[i].fault == sb[i].fault && sa[i].dropped == sb[i].dropped &&
          sa[i].restart_attempts == sb[i].restart_attempts &&
          sa[i].actuation_delay_s == sb[i].actuation_delay_s &&
          (sa[i].value == sb[i].value ||
           (std::isnan(sa[i].value) && std::isnan(sb[i].value)));
      if (!same) ++mismatches;
    }
    std::printf("determinism: %zu faulted stops, %zu mismatches between two "
                "same-seed schedules (%s)\n\n",
                a.faulted_stops(), mismatches,
                mismatches == 0 ? "reproducible" : "NOT REPRODUCIBLE");
  }

  std::printf(
      "Reading: the unguarded controller throws on the first NaN/negative "
      "glitch and its CR grows without bound in the actuation-fault "
      "severity; the guarded controller filters garbage readings, demotes "
      "itself down the COA -> DET -> N-Rand -> NEV ladder as health "
      "degrades, and keeps a finite bounded CR at every fault rate. With a "
      "weak battery the unguarded controller drains the pack flat while the "
      "SOC rung holds the charge near the floor, trading CR for never "
      "stranding the vehicle.\n");
  return 0;
}
