// Arena LP micro-bench: solves/sec and heap-allocation counts for the
// three COA solve paths — the legacy value-type wrapper, the reused
// workspace, and the batched entry point — over a sweep of (mu, q) vertex
// problems (one per (vehicle, B) cell in a fleet sweep).
//
// This bench is invariant-gated, not just informative (CI runs it in the
// perf-smoke job): it exits nonzero unless
//   1. the workspace and batched paths perform ZERO heap allocations per
//      solve after warm-up (counted by the instrumented global allocator
//      below), and
//   2. the batched path sustains >= 2x the legacy scalar throughput.
// Results are emitted on the schema-v2 envelope as BENCH_lp_arena.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_run.h"
#include "core/solver_lp.h"
#include "lp/arena.h"
#include "lp/simplex.h"
#include "util/json.h"
#include "util/random.h"
#include "util/table.h"

// ---------------------------------------------------------------------------
// Instrumented counting allocator: every operator-new in the process bumps
// the counter, so "zero allocations in the solve loop" is measured, not
// assumed. Counting is atomic-relaxed — the bench is single-threaded; the
// atomic just keeps the override well-defined if a library thread appears.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// GCC's -Wmismatched-new-delete pairs inlined std::allocator news with
// these deletes without seeing that the replaced operator new above is
// malloc-backed; the pairing is correct, so silence the false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace idlered;

constexpr double kB = 28.0;
constexpr double kMinSeconds = 0.1;

template <typename T>
inline void keep(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct Timed {
  double seconds = 0.0;
  std::uint64_t iterations = 0;
  std::uint64_t allocations = 0;

  double per_sec(double items_per_iter) const {
    return seconds > 0.0
               ? static_cast<double>(iterations) * items_per_iter / seconds
               : 0.0;
  }
};

/// Calibrated timing loop that also meters the allocator: grow the batch
/// until one timed batch spans kMinSeconds, then report that batch's wall
/// time and allocation count.
template <typename F>
Timed time_and_count(F&& body) {
  using clock = std::chrono::steady_clock;
  std::uint64_t iters = 1;
  for (;;) {
    const std::uint64_t alloc0 =
        g_allocations.load(std::memory_order_relaxed);
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) body();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - alloc0;
    if (s >= kMinSeconds || iters >= (1ull << 30)) return {s, iters, allocs};
    const double grow = s > 0.0 ? (kMinSeconds * 1.4 / s) : 100.0;
    iters = std::max<std::uint64_t>(
        iters + 1, static_cast<std::uint64_t>(static_cast<double>(iters) *
                                              std::min(grow, 100.0)));
  }
}

/// COA sweep workload: one (mu, q) cell per vehicle, spanning every vertex
/// region of Figure 1a so the LP pivot mix is realistic.
std::vector<dist::ShortStopStats> sweep_stats(std::size_t cells) {
  util::Rng rng(42);
  std::vector<dist::ShortStopStats> stats(cells);
  for (auto& s : stats) {
    s.q_b_plus = rng.uniform(0.0, 0.95);
    s.mu_b_minus = rng.uniform(0.01, 0.99) * kB * (1.0 - s.q_b_plus);
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("lp_arena", argc, argv);
  std::printf("%s",
              util::banner("Arena LP solver: solves/sec + allocations")
                  .c_str());

  constexpr std::size_t kCells = 512;
  const std::vector<dist::ShortStopStats> stats = sweep_stats(kCells);
  const double cells = static_cast<double>(kCells);

  // Warm-up: touch every path once so lazy one-time setup (workspace
  // buffers, libc internals) is excluded from the gated counts.
  lp::Workspace workspace(2, 3);
  lp::WorkspacePool pool(2, 3);
  std::vector<core::LpStrategySolution> batch_out(kCells);
  keep(core::solve_constrained_lp(stats[0], kB));
  keep(core::solve_constrained_lp(stats[0], kB, workspace));
  keep(core::solve_constrained_lp_batch(stats, kB, pool, batch_out));

  // Legacy value-type path: a fresh one-shot workspace per solve.
  const Timed legacy = time_and_count([&] {
    for (const auto& s : stats) keep(core::solve_constrained_lp(s, kB));
  });
  // Workspace path: one arena reused across the whole sweep.
  const Timed arena = time_and_count([&] {
    for (const auto& s : stats)
      keep(core::solve_constrained_lp(s, kB, workspace));
  });
  // Batched path: the whole sweep through one pool slot.
  const Timed batched = time_and_count([&] {
    keep(core::solve_constrained_lp_batch(stats, kB, pool, batch_out));
  });

  // The LP-level comparison the speedup gate runs on: the same 512 vertex
  // problems solved (a) the way every pre-arena call site did — build a
  // value-type lp::Problem and hand it to the one-shot wrapper, per cell —
  // and (b) through lp::solve_batch over prestaged flat views, with the
  // per-sweep objective refresh included in the timed loop. The COA-level
  // rows above carry the closed-form coefficient math in both paths, so
  // they bound what fleet sweeps see end-to-end; this pair isolates what
  // the arena redesign actually changed.
  std::vector<core::LpCoefficients> ks(kCells);
  for (std::size_t i = 0; i < kCells; ++i)
    ks[i] = core::lp_coefficients(stats[i], kB);
  std::vector<double> objectives(kCells * 3);
  std::vector<double> coeffs{1.0, 1.0, 1.0};
  std::vector<lp::Sense> senses{lp::Sense::kLessEqual};
  std::vector<double> rhs{1.0};
  std::vector<lp::ProblemView> views(kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    views[i] = lp::ProblemView{
        std::span<const double>(objectives.data() + i * 3, 3), coeffs, senses,
        rhs, false, {}, {}};
  }
  const auto refresh_objectives = [&] {
    for (std::size_t i = 0; i < kCells; ++i) {
      objectives[i * 3 + 0] = ks[i].k_alpha;
      objectives[i * 3 + 1] = ks[i].k_beta;
      objectives[i * 3 + 2] =
          std::isfinite(ks[i].k_gamma) ? ks[i].k_gamma : 0.0;
    }
  };
  refresh_objectives();
  std::vector<lp::BatchResult> results(kCells);
  keep(lp::solve_batch(pool, views, results));  // warm-up

  const Timed scalar_vertex = time_and_count([&] {
    for (std::size_t i = 0; i < kCells; ++i) {
      lp::Problem problem;
      problem.objective = {objectives[i * 3 + 0], objectives[i * 3 + 1],
                           objectives[i * 3 + 2]};
      problem.add_constraint({1.0, 1.0, 1.0}, lp::Sense::kLessEqual, 1.0);
      keep(lp::solve(problem));
    }
  });
  const Timed batched_vertex = time_and_count([&] {
    refresh_objectives();
    keep(lp::solve_batch(pool, views, results));
  });

  const double legacy_rate = legacy.per_sec(cells);
  const double arena_rate = arena.per_sec(cells);
  const double batched_rate = batched.per_sec(cells);
  const double scalar_vertex_rate = scalar_vertex.per_sec(cells);
  const double batched_vertex_rate = batched_vertex.per_sec(cells);
  const double batch_speedup = scalar_vertex_rate > 0.0
                                   ? batched_vertex_rate / scalar_vertex_rate
                                   : 0.0;
  const auto allocs_per_solve = [&](const Timed& t) {
    return static_cast<double>(t.allocations) /
           (static_cast<double>(t.iterations) * cells);
  };

  util::Table table(
      {"path", "solves/sec", "allocs/solve", "batch iterations"});
  table.add_row({"coa legacy value-type", util::fmt(legacy_rate, 0),
                 util::fmt(allocs_per_solve(legacy), 2),
                 std::to_string(legacy.iterations)});
  table.add_row({"coa workspace scalar", util::fmt(arena_rate, 0),
                 util::fmt(allocs_per_solve(arena), 2),
                 std::to_string(arena.iterations)});
  table.add_row({"coa workspace batched", util::fmt(batched_rate, 0),
                 util::fmt(allocs_per_solve(batched), 2),
                 std::to_string(batched.iterations)});
  table.add_row({"lp scalar value-type", util::fmt(scalar_vertex_rate, 0),
                 util::fmt(allocs_per_solve(scalar_vertex), 2),
                 std::to_string(scalar_vertex.iterations)});
  table.add_row({"lp solve_batch", util::fmt(batched_vertex_rate, 0),
                 util::fmt(allocs_per_solve(batched_vertex), 2),
                 std::to_string(batched_vertex.iterations)});
  std::printf("%s\n", table.str().c_str());
  std::printf("solve_batch vs scalar value-type: %.2fx\n", batch_speedup);

  // Invariant gates (the reason CI runs this bench).
  const bool zero_alloc = arena.allocations == 0 &&
                          batched.allocations == 0 &&
                          batched_vertex.allocations == 0;
  const bool speedup_ok = batch_speedup >= 2.0;
  if (!zero_alloc) {
    std::printf("GATE FAILED: allocations in the arena solve loop "
                "(workspace=%llu batched=%llu vertex_batch=%llu)\n",
                static_cast<unsigned long long>(arena.allocations),
                static_cast<unsigned long long>(batched.allocations),
                static_cast<unsigned long long>(batched_vertex.allocations));
  }
  if (!speedup_ok) {
    std::printf("GATE FAILED: batched path only %.2fx the scalar "
                "value-type path (need >= 2x)\n", batch_speedup);
  }

  util::JsonValue payload = util::JsonValue::object();
  payload.set("cells", cells);
  payload.set("min_seconds_per_path", kMinSeconds);
  payload.set("coa_legacy_solves_per_sec", legacy_rate);
  payload.set("coa_workspace_solves_per_sec", arena_rate);
  payload.set("coa_batched_solves_per_sec", batched_rate);
  payload.set("lp_scalar_solves_per_sec", scalar_vertex_rate);
  payload.set("lp_batch_solves_per_sec", batched_vertex_rate);
  payload.set("legacy_allocs_per_solve", allocs_per_solve(legacy));
  payload.set("workspace_alloc_count", static_cast<double>(arena.allocations));
  payload.set("batched_alloc_count",
              static_cast<double>(batched.allocations));
  payload.set("lp_batch_alloc_count",
              static_cast<double>(batched_vertex.allocations));
  payload.set("batch_speedup_vs_scalar", batch_speedup);
  payload.set("gate_zero_alloc", zero_alloc);
  payload.set("gate_batch_speedup", speedup_ok);
  run.stage("results", std::move(payload));

  return zero_alloc && speedup_ok ? 0 : 1;
}
