// Reproduction of Figure 2: projected views of the worst-case CR of every
// strategy as q_B+ varies, at fixed mu_B- values. Panels (a)-(b) use
// moderate mu (0.3 B, 0.6 B); panels (c)-(d) use the tiny-mu settings
// (0.02 B, 0.05 B) where b-DET's improvement over N-Rand/DET/TOI shows.
#include <cmath>
#include <cstdio>

#include "common/bench_run.h"
#include "core/region.h"
#include "util/table.h"

namespace {

using namespace idlered;

void print_panel(const char* label, double mu_fraction, double break_even) {
  std::printf("%s", util::banner(std::string("Figure 2") + label +
                                 ": mu_B- = " + util::fmt(mu_fraction, 2) +
                                 " B").c_str());
  util::Table table(
      {"q_B+", "N-Rand", "TOI", "DET", "b-DET", "Proposed", "winner"});
  const auto points = core::compute_projection(break_even, mu_fraction, 24);
  for (const auto& p : points) {
    table.add_row({util::fmt(p.q_b_plus, 3), util::fmt(p.cr_nrand, 3),
                   util::fmt(p.cr_toi, 3), util::fmt(p.cr_det, 3),
                   std::isfinite(p.cr_b_det) ? util::fmt(p.cr_b_det, 3)
                                             : "inf",
                   util::fmt(p.cr_proposed, 3),
                   core::to_string(p.winner)});
  }
  std::printf("%s\n", table.str().c_str());

  // Where does b-DET strictly improve on every classic strategy?
  double q_lo = -1.0;
  double q_hi = -1.0;
  for (const auto& p : points) {
    const bool improves = std::isfinite(p.cr_b_det) &&
                          p.cr_b_det < p.cr_nrand - 1e-9 &&
                          p.cr_b_det < p.cr_det - 1e-9 &&
                          p.cr_b_det < p.cr_toi - 1e-9;
    if (improves) {
      if (q_lo < 0.0) q_lo = p.q_b_plus;
      q_hi = p.q_b_plus;
    }
  }
  if (q_lo >= 0.0) {
    std::printf("b-DET improvement band: q_B+ in [%.3f, %.3f]\n\n", q_lo,
                q_hi);
  } else {
    std::printf("b-DET never strictly improves at this mu_B- "
                "(expected for the moderate-mu panels)\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("fig2_projections", argc, argv);
  const double b = 28.0;  // projections are scale-free in mu/B and q
  print_panel("(a)", 0.30, b);
  print_panel("(b)", 0.60, b);
  print_panel("(c)", 0.02, b);
  print_panel("(d)", 0.05, b);
  return 0;
}
