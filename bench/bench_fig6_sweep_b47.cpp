// Reproduction of Figure 6: worst-case CR of every strategy as a function
// of the average stop length, for conventional vehicles (B = 47 s). Same
// methodology as Figure 5 with the larger break-even interval.
#include <cstdio>

#include "common/sweep.h"
#include "sim/fleet_eval.h"
#include "util/table.h"

int main() {
  using namespace idlered;

  std::printf("%s", util::banner("Figure 6: worst-case CR vs average stop "
                                 "length (B = 47 s)").c_str());
  const auto config = bench::default_sweep(47.0);
  const auto points = bench::run_traffic_sweep(config);
  std::vector<std::string> names;
  for (const auto& s : sim::standard_strategy_set()) names.push_back(s.name);
  bench::print_sweep(points, names, config.break_even);
  return 0;
}
