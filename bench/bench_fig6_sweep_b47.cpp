// Reproduction of Figure 6: worst-case CR of every strategy as a function
// of the average stop length, for conventional vehicles (B = 47 s). Same
// methodology as Figure 5 with the larger break-even interval; evaluation
// runs on the parallel engine and the series is archived to
// BENCH_fig6_sweep_b47.json.
#include <cstdio>

#include "common/bench_run.h"
#include "common/sweep.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;
  bench::BenchRun bench_run("fig6_sweep_b47", argc, argv);

  std::printf("%s", util::banner("Figure 6: worst-case CR vs average stop "
                                 "length (B = 47 s)").c_str());
  const auto config = bench::default_sweep(47.0);
  const auto run = bench::run_traffic_sweep(config);
  bench::print_sweep(run.points, run.report.strategy_names,
                     config.break_even);
  bench_run.stage_report(run.report);
  return 0;
}
