// Reproduction of Appendix C: the break-even interval derivation.
// Regenerates every intermediate quantity the paper reports — idling cost
// (eq. 45-46), restart fuel, starter wear, battery wear, NOx penalty — and
// the headline B values (28 s SSV / 47 s conventional), plus sensitivity
// sweeps over fuel price and wear parameters.
#include <cstdio>

#include "common/bench_run.h"
#include "costmodel/break_even.h"
#include "util/table.h"

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("appendixC_break_even", argc, argv);
  using namespace idlered;
  using namespace idlered::costmodel;

  std::printf("%s", util::banner("Appendix C.1: idling cost").c_str());
  EngineSpec fusion;  // 2011 Ford Fusion 2.5 L, measured 0.279 cc/s
  FuelPricing price;  // $3.50 / gallon
  std::printf("eq. 45 regression at D = 2.5 L : %.4f L/h\n",
              idle_fuel_l_per_h(2.5));
  std::printf("measured idle burn           : %.3f cc/s (Argonne)\n",
              fusion.measured_idle_fuel_cc_per_s);
  std::printf("idling cost (eq. 46)         : %.4f cents/s "
              "(paper: 0.0258)\n\n",
              idling_cost_cents_per_s(fusion, price));

  std::printf("%s", util::banner("Appendix C.2: restart cost components").c_str());
  util::Table parts({"component", "SSV", "conventional", "paper range"});
  const auto ssv = compute_break_even(ssv_vehicle());
  const auto conv = compute_break_even(conventional_vehicle());
  parts.add_row({"fuel (s of idling)", util::fmt(ssv.fuel_s, 2),
                 util::fmt(conv.fuel_s, 2), "10"});
  parts.add_row({"starter wear (s)", util::fmt(ssv.starter_s, 2),
                 util::fmt(conv.starter_s, 2), "0 / 19.4 - 155"});
  parts.add_row({"battery wear (s)", util::fmt(ssv.battery_s, 2),
                 util::fmt(conv.battery_s, 2), ">= 18.76"});
  parts.add_row({"NOx penalty (s)", util::fmt(ssv.emissions_s, 2),
                 util::fmt(conv.emissions_s, 2), "~0.14"});
  parts.add_row({"break-even B (s)", util::fmt(ssv.break_even_s, 2),
                 util::fmt(conv.break_even_s, 2), "28 / 47"});
  std::printf("%s\n", parts.str().c_str());

  std::printf("SSV breakdown:\n%s\n", ssv.describe().c_str());
  std::printf("conventional breakdown:\n%s\n", conv.describe().c_str());

  std::printf("%s", util::banner("Sensitivity: B vs fuel price").c_str());
  util::Table fuel_sweep({"$/gallon", "B SSV (s)", "B conventional (s)"});
  for (double usd : {2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 8.0}) {
    VehicleConfig s = ssv_vehicle();
    VehicleConfig c = conventional_vehicle();
    s.fuel.usd_per_gallon = usd;
    c.fuel.usd_per_gallon = usd;
    fuel_sweep.add_row({util::fmt(usd, 2),
                        util::fmt(compute_break_even(s).break_even_s, 1),
                        util::fmt(compute_break_even(c).break_even_s, 1)});
  }
  std::printf("%s\n", fuel_sweep.str().c_str());

  std::printf("%s", util::banner("Sensitivity: B vs starter durability "
                                 "(conventional)").c_str());
  util::Table wear_sweep(
      {"starts/replacement", "starter cents/start", "B (s)"});
  for (double starts : {20000.0, 30000.0, 40000.0}) {
    VehicleConfig c = conventional_vehicle();
    c.starter.starts_per_replacement = starts;
    const auto b = compute_break_even(c);
    wear_sweep.add_row(
        {util::fmt(starts, 0),
         util::fmt(starter_cost_cents_per_start(c.starter), 3),
         util::fmt(b.break_even_s, 1)});
  }
  std::printf("%s\n", wear_sweep.str().c_str());

  std::printf("note: the paper rounds its published figures to 28 s and "
              "47 s; our parameterization reproduces them within ~1 s "
              "(see EXPERIMENTS.md for the exact arithmetic).\n");
  return 0;
}
