// Ablation A5: multislope ski rental — what does a second shutdown depth
// buy? Compares the classic two-state controller (idle / engine-off) with a
// three-state one (idle / engine-off-with-HVAC / deep-off) on worst-case
// CR and on realized cost over NREL-like traces, for the deterministic
// envelope follower and the randomized envelope strategy.
#include <cstdio>

#include "common/bench_run.h"
#include "core/multislope.h"
#include "traces/fleet_generator.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

double trace_cost(const core::Schedule& schedule,
                  const std::vector<double>& stops) {
  double total = 0.0;
  for (double y : stops) total += schedule.online_cost(y);
  return total;
}

double trace_cost_randomized(const core::MultislopeInstance& inst,
                             const std::vector<double>& stops) {
  double total = 0.0;
  for (double y : stops) {
    total += core::randomized_envelope_expected_cost(inst, y);
  }
  return total;
}

double trace_offline(const core::MultislopeInstance& inst,
                     const std::vector<double>& stops) {
  double total = 0.0;
  for (double y : stops) total += inst.offline_cost(y);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("ablation_multislope", argc, argv);
  std::printf("%s", util::banner("Ablation A5: multislope (multi-depth "
                                 "shutdown) controllers").c_str());

  // Two-state: classic B = 35 s deep-off. Three-state: HVAC-preserving
  // intermediate state at 0.3x idle draw and a 15 s-equivalent restart.
  const auto two_state = core::MultislopeInstance::classic(35.0);
  const auto three_state = core::three_state_vehicle(0.3, 15.0, 35.0);

  util::Table wc({"instance", "envelope-DET worst CR",
                  "randomized worst CR"});
  wc.add_row({"2-state (idle/off)",
              util::fmt(core::envelope_follower(two_state).worst_case_cr(), 3),
              util::fmt(core::randomized_envelope_worst_cr(two_state), 3)});
  wc.add_row({"3-state (+HVAC tier)",
              util::fmt(core::envelope_follower(three_state).worst_case_cr(), 3),
              util::fmt(core::randomized_envelope_worst_cr(three_state), 3)});
  std::printf("%s\n", wc.str().c_str());

  // Trace-level comparison: the *offline* optimum of the richer instance is
  // cheaper, and the online envelope follower inherits most of the gain.
  util::Rng rng(20140601);
  const auto trace =
      traces::generate_vehicle(traces::chicago(), 0, rng).stops;

  util::Table costs({"controller", "cost on Chicago week (idle-s eq)",
                     "vs 2-state offline"});
  const double off2 = trace_offline(two_state, trace);
  const double off3 = trace_offline(three_state, trace);
  auto pct = [&](double c) {
    return util::fmt(100.0 * (c / off2 - 1.0), 1) + "%";
  };
  costs.add_row({"2-state offline", util::fmt(off2, 0), pct(off2)});
  costs.add_row({"3-state offline", util::fmt(off3, 0), pct(off3)});
  costs.add_row({"2-state envelope-DET",
                 util::fmt(trace_cost(core::envelope_follower(two_state),
                                      trace), 0),
                 pct(trace_cost(core::envelope_follower(two_state), trace))});
  costs.add_row({"3-state envelope-DET",
                 util::fmt(trace_cost(core::envelope_follower(three_state),
                                      trace), 0),
                 pct(trace_cost(core::envelope_follower(three_state),
                                trace))});
  costs.add_row({"2-state randomized",
                 util::fmt(trace_cost_randomized(two_state, trace), 0),
                 pct(trace_cost_randomized(two_state, trace))});
  costs.add_row({"3-state randomized",
                 util::fmt(trace_cost_randomized(three_state, trace), 0),
                 pct(trace_cost_randomized(three_state, trace))});
  std::printf("%s\n", costs.str().c_str());

  std::printf("Reading: the HVAC tier lowers the offline bar by ~11%% and "
              "the randomized strategy captures most of that gain; the "
              "deterministic follower can even lose on mid-length-heavy "
              "traces (it pays the intermediate switch cost on stops that "
              "end soon after). Guarantees are unchanged: e/(e-1) = %.3f "
              "randomized, 2 deterministic, on both instances.\n",
              util::kEOverEMinus1);
  return 0;
}
