// Ablation A8: how much of the theoretical idling saving survives the
// battery's energy constraint? Sweeps the usable battery window and the
// accessory load, running the COA policy (and TOI) through an NREL-like
// week with SOC accounting, and reports forced-idle/aborted-shutoff rates
// and the realized CR inflation vs the unconstrained policy.
#include <cstdio>

#include "common/bench_run.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "sim/battery.h"
#include "sim/evaluator.h"
#include "traces/fleet_generator.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;

struct RunResult {
  double cr;
  std::size_t forced;
  std::size_t aborted;
  double final_soc;
};

RunResult run(const core::PolicyPtr& policy, const sim::BatteryModel& battery,
              const std::vector<double>& stops, std::uint64_t seed) {
  sim::SocConstrainedController ctl(policy, battery);
  util::Rng rng(seed);
  // Urban stop-and-go: short drives between stops (~40 s), so the
  // alternator surplus barely covers the engine-off drain and the battery
  // state actually matters.
  util::Rng drive_rng(seed + 1);
  for (double y : stops) {
    ctl.process_stop(y, drive_rng.exponential(40.0), rng);
  }
  return {ctl.totals().cr(), ctl.forced_idle_stops(),
          ctl.aborted_shutoffs(), ctl.soc()};
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("ablation_battery", argc, argv);
  std::printf("%s", util::banner("Ablation A8: battery-constrained "
                                 "stop-start control (B = 28 s)").c_str());

  util::Rng rng(20140601);
  const auto trace = traces::generate_vehicle(traces::chicago(), 0, rng);
  const auto& stops = trace.stops;
  core::ProposedPolicy coa_policy(kB, stops);
  const auto coa = std::make_shared<core::ProposedPolicy>(coa_policy);
  const double unconstrained_cr =
      sim::evaluate(*coa, stops).cr();
  std::printf("workload: one Chicago week, %zu stops | unconstrained COA "
              "CR = %.3f (picks %s)\n\n",
              stops.size(), unconstrained_cr,
              core::to_string(coa_policy.choice().strategy).c_str());

  std::printf("--- usable battery window sweep (accessory load 600 W, "
              "alternator surplus 600 W) ---\n");
  util::Table t1({"capacity (Wh)", "COA CR", "forced idles",
                  "aborted shutoffs", "final SOC"});
  for (double wh : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    sim::BatteryModel b;
    b.capacity_wh = wh;
    b.accessory_draw_w = 600.0;
    b.recharge_w = 600.0;
    const auto r = run(coa, b, stops, 17);
    t1.add_row({util::fmt(wh, 0), util::fmt(r.cr, 3),
                std::to_string(r.forced), std::to_string(r.aborted),
                util::fmt(r.final_soc, 2)});
  }
  std::printf("%s\n", t1.str().c_str());

  std::printf("--- accessory load sweep (100 Wh window, 600 W surplus) ---\n");
  util::Table t2({"accessory load (W)", "COA CR", "forced idles",
                  "aborted shutoffs"});
  for (double w : {150.0, 300.0, 600.0, 1200.0, 2400.0}) {
    sim::BatteryModel b;
    b.capacity_wh = 100.0;
    b.recharge_w = 600.0;
    b.accessory_draw_w = w;
    const auto r = run(coa, b, stops, 17);
    t2.add_row({util::fmt(w, 0), util::fmt(r.cr, 3),
                std::to_string(r.forced), std::to_string(r.aborted)});
  }
  std::printf("%s\n", t2.str().c_str());

  std::printf("--- TOI under the same constraints (factory SSS) ---\n");
  util::Table t3({"capacity (Wh)", "TOI CR (constrained)",
                  "TOI CR (unconstrained)"});
  const auto toi = core::make_toi(kB);
  const double toi_free = sim::evaluate(*toi, stops).cr();
  for (double wh : {50.0, 100.0, 400.0}) {
    sim::BatteryModel b;
    b.capacity_wh = wh;
    b.accessory_draw_w = 600.0;
    b.recharge_w = 600.0;
    const auto r = run(toi, b, stops, 23);
    t3.add_row({util::fmt(wh, 0), util::fmt(r.cr, 3),
                util::fmt(toi_free, 3)});
  }
  std::printf("%s\n", t3.str().c_str());
  std::printf("Reading: generous packs preserve the unconstrained CR; as "
              "the window shrinks or the house load grows, forced idles "
              "and aborted shutoffs push the realized CR toward NEV's — "
              "quantifying why SSVs ship upgraded AGM batteries "
              "(Appendix C).\n");
  return 0;
}
