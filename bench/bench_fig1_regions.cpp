// Reproduction of Figure 1: (a) the strategy-selection regions of the
// proposed online algorithm over the (mu_B-/B, q_B+) plane, and (b) its
// worst-case competitive-ratio surface.
#include <algorithm>
#include <cstdio>

#include "common/bench_run.h"
#include "core/region.h"
#include "util/math.h"
#include "util/table.h"

namespace {

using namespace idlered;

void print_cr_surface(double break_even) {
  // A coarse numeric slice of the Figure 1(b) surface: worst-case CR rows
  // (mu ascending) by columns (q ascending).
  const int n = 10;
  std::vector<std::string> header{"mu/B \\ q"};
  for (int j = 0; j < n; ++j) {
    header.push_back(util::fmt((j + 0.5) / n, 2));
  }
  util::Table table(std::move(header));
  const auto cells = core::compute_region_map(break_even, n, n);
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> row{util::fmt((i + 0.5) / n, 2)};
    for (int j = 0; j < n; ++j) {
      const auto& c = cells[static_cast<std::size_t>(i * n + j)];
      row.push_back(c.feasible ? util::fmt(c.cr, 3) : "  -  ");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("fig1_regions", argc, argv);
  const double b = 28.0;  // the region map is scale-free in mu/B and q

  std::printf("%s", util::banner("Figure 1(a): strategy selection regions "
                                 "over (mu_B-/B, q_B+)").c_str());
  const int n = 64;
  const auto cells = core::compute_region_map(b, n, n);
  std::printf("%s\n", core::render_region_map(cells, n, n).c_str());

  // Region occupancy summary.
  int toi = 0;
  int det = 0;
  int bdet = 0;
  int nrand = 0;
  int infeasible = 0;
  double cr_max = 0.0;
  for (const auto& c : cells) {
    if (!c.feasible) {
      ++infeasible;
      continue;
    }
    cr_max = std::max(cr_max, c.cr);
    switch (c.strategy) {
      case core::Strategy::kToi: ++toi; break;
      case core::Strategy::kDet: ++det; break;
      case core::Strategy::kBDet: ++bdet; break;
      case core::Strategy::kNRand: ++nrand; break;
    }
  }
  util::Table occupancy({"region", "cells", "share of feasible"});
  const double feasible_total = static_cast<double>(n * n - infeasible);
  occupancy.add_row({"TOI", std::to_string(toi),
                     util::fmt(toi / feasible_total, 3)});
  occupancy.add_row({"DET", std::to_string(det),
                     util::fmt(det / feasible_total, 3)});
  occupancy.add_row({"b-DET", std::to_string(bdet),
                     util::fmt(bdet / feasible_total, 3)});
  occupancy.add_row({"N-Rand", std::to_string(nrand),
                     util::fmt(nrand / feasible_total, 3)});
  std::printf("%s\n", occupancy.str().c_str());

  std::printf("%s", util::banner("Figure 1(b): worst-case CR of the proposed "
                                 "algorithm").c_str());
  print_cr_surface(b);
  std::printf(
      "\nmax worst-case CR over the plane: %.4f (theory cap e/(e-1) = "
      "%.4f)\n",
      cr_max, util::kEOverEMinus1);
  return 0;
}
