// Ablation A1: what does each level of side information buy?
//
//   N-Rand    — no statistics           (guarantee e/(e-1) ~ 1.582)
//   MOM-Rand  — first moment mu         (Khanafer et al.)
//   COA       — (mu_B-, q_B+)           (this paper)
//
// For a spectrum of stop-length laws we report each strategy's *realized*
// expected CR against the true law, demonstrating the paper's claim that
// (mu_B-, q_B+) is the statistic that matters for ski rental, while the
// plain first moment often changes nothing.
#include <cstdio>
#include <memory>

#include "common/bench_run.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "dist/adaptors.h"
#include "dist/empirical.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "sim/evaluator.h"
#include "traffic/intersection.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;

/// Expected CR of a policy against a law, by large-sample evaluation
/// (deterministic seed; expected-cost mode, so the only noise is the
/// sampling of stop lengths themselves).
double realized_cr(const core::Policy& policy,
                   const std::vector<double>& stops) {
  return sim::evaluate(policy, stops).cr();
}

void run_case(const std::string& label, const dist::StopLengthDistribution& law,
              util::Table& table, util::Rng& rng) {
  const auto stops = law.sample_many(rng, 200000);
  const auto stats = dist::ShortStopStats::from_sample(stops, kB);

  const auto nrand = core::make_n_rand(kB);
  double mu_full = 0.0;
  for (double y : stops) mu_full += y;
  mu_full /= static_cast<double>(stops.size());
  const auto momrand = core::make_mom_rand(kB, mu_full);
  core::ProposedPolicy coa(kB, stats);

  table.add_row({label, util::fmt(stats.mu_b_minus / kB, 3),
                 util::fmt(stats.q_b_plus, 3),
                 util::fmt(realized_cr(*nrand, stops), 3),
                 util::fmt(realized_cr(*momrand, stops), 3),
                 util::fmt(realized_cr(coa, stops), 3),
                 core::to_string(coa.choice().strategy),
                 util::fmt(coa.worst_case_cr(), 3)});
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("ablation_statistics", argc, argv);
  std::printf("%s", util::banner("Ablation A1: value of side statistics "
                                 "(B = 28 s)").c_str());
  util::Table table({"stop-length law", "mu_B-/B", "q_B+", "N-Rand CR",
                     "MOM-Rand CR", "COA CR", "COA picks", "COA bound"});
  util::Rng rng(424242);

  run_case("Exponential(mean 10)", dist::Exponential(10.0), table, rng);
  run_case("Exponential(mean 30)", dist::Exponential(30.0), table, rng);
  run_case("Exponential(mean 120)", dist::Exponential(120.0), table, rng);
  run_case("Uniform[0, 20]", dist::Uniform(0.0, 20.0), table, rng);
  run_case("Uniform[0, 200]", dist::Uniform(0.0, 200.0), table, rng);
  run_case("LogNormal(mean 25, med 15)",
           dist::LogNormal::from_mean_median(25.0, 15.0), table, rng);
  {
    dist::Mixture heavy({{0.78, std::make_shared<dist::LogNormal>(
                                    dist::LogNormal::from_mean_median(
                                        25.0, 15.0))},
                         {0.22, std::make_shared<dist::Pareto>(60.0, 1.6)}});
    run_case("NREL-like body+tail mixture", heavy, table, rng);
  }
  {
    // Mechanistic stops from the signalized-intersection substrate.
    traffic::IntersectionConfig cfg;
    cfg.arrival_rate_per_s = 0.18;
    traffic::IntersectionSimulator sim(cfg);
    util::Rng traffic_rng = rng.fork(17);
    dist::Empirical law(sim.simulate(2.0e6, traffic_rng));
    run_case("signalized intersection (rho=0.72)", law, table, rng);
  }
  {
    // Bimodal world: quick rolling stops plus errand-length parking.
    dist::Mixture bimodal({{0.85, std::make_shared<dist::Uniform>(0.0, 6.0)},
                           {0.15, std::make_shared<dist::Uniform>(
                                      120.0, 600.0)}});
    run_case("bimodal 85% [0,6]s + 15% [2,10]min", bimodal, table, rng);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: COA's realized CR is never above N-Rand's and its "
              "own printed bound; MOM-Rand only helps when the first moment "
              "is small relative to B.\n");
  return 0;
}
