// Reproduction of the Introduction's headline numbers: the US national
// idling bill ("more than 6 billion gallons ... more than $20 billion each
// year", idle share 13%-23% of operating time) and the share of it each
// online strategy would recover on the synthetic NREL-like traffic.
#include <cstdio>

#include "common/bench_run.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/fleet_economics.h"
#include "sim/evaluator.h"
#include "traces/fleet_generator.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("intro_claims", argc, argv);
  using namespace idlered;

  std::printf("%s", util::banner("Introduction claims: the US idling "
                                 "bill").c_str());
  util::Table bill_table({"idle fraction", "fuel (B gal/yr)", "cost (B$/yr)",
                          "CO2 (Mt/yr)"});
  for (double frac : {0.13, 0.18, 0.23}) {
    costmodel::NationalFleetModel fleet;
    fleet.idle_fraction = frac;
    const auto bill = costmodel::national_idling_bill(fleet);
    bill_table.add_row({util::fmt(frac, 2),
                        util::fmt(bill.fuel_gallons_per_year / 1e9, 2),
                        util::fmt(bill.usd_per_year / 1e9, 1),
                        util::fmt(bill.co2_tonnes_per_year / 1e6, 1)});
  }
  std::printf("%s", bill_table.str().c_str());
  std::printf("paper: \"more than 6 billion gallons of fuel at a cost of "
              "more than $20 billion each year\" — reproduced by the\n"
              "13%%-23%% idle band around a ~250M-vehicle fleet at ~1.2 h/day "
              "behind the wheel.\n\n");

  std::printf("%s", util::banner("How much of the bill does each strategy "
                                 "recover? (B = 28 s)").c_str());
  // Aggregate stop workload from the three synthetic areas.
  util::Rng rng(20140601);
  std::vector<double> stops;
  for (const auto& area : traces::all_areas()) {
    const auto law = traces::area_stop_distribution(area);
    util::Rng fork = rng.fork(std::hash<std::string>{}(area.name));
    const auto part = law->sample_many(fork, 40000);
    stops.insert(stops.end(), part.begin(), part.end());
  }
  const double b = 28.0;
  const auto nev = sim::evaluate(*core::make_nev(b), stops);
  core::ProposedPolicy coa(b, stops);

  costmodel::NationalFleetModel fleet;
  const auto bill = costmodel::national_idling_bill(fleet);

  util::Table rec({"strategy", "cost vs NEV", "recoverable share",
                   "fuel saved (B gal/yr)", "saved ($B/yr)"});
  auto add = [&](const char* name, const sim::CostTotals& totals) {
    const double f = costmodel::recoverable_fraction(
        totals.online / static_cast<double>(totals.num_stops),
        nev.online / static_cast<double>(nev.num_stops));
    const auto saved = costmodel::scale_bill(bill, f);
    rec.add_row({name, util::fmt(totals.online / nev.online, 3),
                 util::fmt(f, 3),
                 util::fmt(saved.fuel_gallons_per_year / 1e9, 2),
                 util::fmt(saved.usd_per_year / 1e9, 1)});
  };
  // The offline denominator rides along every evaluate() result.
  const double offline_total = nev.offline;
  add("offline clairvoyant",
      sim::CostTotals{offline_total, offline_total, stops.size()});
  add("COA (proposed)", sim::evaluate(coa, stops));
  add("TOI (factory SSS)",
      sim::evaluate(*core::make_toi(b), stops));
  add("DET (wait B)", sim::evaluate(*core::make_det(b), stops));
  add("N-Rand", sim::evaluate(*core::make_n_rand(b), stops));
  std::printf("%s\n", rec.str().c_str());
  std::printf("Reading: on signal-dominated traffic a stop-start system "
              "recovers the majority of the national idling bill, and COA "
              "closes most of the remaining gap between the factory TOI "
              "strategy and the clairvoyant bound.\n");
  return 0;
}
