// Reproduction of Figure 4 (Individual Vehicle Test) and the Section 5
// headline numbers: per-area worst-case and average CR of the six
// strategies on the full 1182-vehicle cohort, for SSV (B = 28 s) and
// conventional vehicles (B = 47 s).
//
// Both cohort runs are one engine plan: two sweep points (axis = B) over
// the *same* fleet object, so the per-vehicle statistics caches (sorted
// stops + prefix sums) are built once and serve both break-evens. Results
// are archived to BENCH_fig4_vehicle_test.json.
//
// Paper reference values (real NREL data; ours is the synthetic fleet of
// DESIGN.md, so compare shape, not digits):
//   B = 28: proposed best in 1169/1182 vehicles; mean CR 1.11 / 1.32 / 1.10
//           for California / Chicago / Atlanta.
//   B = 47: proposed best in 977/1182 vehicles; mean CR 1.35 / 1.42 / 1.35.
#include <cstdio>

#include "common/bench_run.h"
#include "common/sweep.h"
#include "core/analytic.h"
#include "costmodel/break_even.h"
#include "engine/eval_session.h"
#include "traces/fleet_generator.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace idlered;

struct PaperMeans {
  double california;
  double chicago;
  double atlanta;
  int best_count;
};

void print_cohort(const engine::EvalReport::Point& point,
                  const char* vehicle_kind, const PaperMeans& paper) {
  const sim::FleetComparison& cmp = point.comparison;

  std::printf("%s", util::banner(std::string("Figure 4, ") + vehicle_kind +
                                 " (B = " + util::fmt(point.break_even, 0) +
                                 " s)").c_str());

  for (const char* area : {"California", "Chicago", "Atlanta"}) {
    const auto part = cmp.filter_area(area);
    const auto means = part.mean_cr();
    const auto worsts = part.worst_cr();
    util::Table table({"strategy", "average CR", "worst CR"});
    for (std::size_t s = 0; s < part.num_strategies(); ++s) {
      table.add_row({part.strategy_names[s], util::fmt(means[s], 3),
                     worsts[s] > 100.0 ? ">100" : util::fmt(worsts[s], 3)});
    }
    std::printf("--- %s (%zu vehicles) ---\n%s\n", area,
                part.vehicles.size(), table.str().c_str());
  }

  const auto best = cmp.best_counts(1e-9);
  const std::size_t coa = cmp.num_strategies() - 1;  // COA is last
  std::printf("proposed (COA) best on %zu of %zu vehicles "
              "(paper: %d of 1182)\n",
              best[coa], cmp.vehicles.size(), paper.best_count);

  util::Table headline({"area", "COA mean CR (measured)", "paper"});
  headline.add_row({"California",
                    util::fmt(cmp.filter_area("California").mean_cr()[coa], 2),
                    util::fmt(paper.california, 2)});
  headline.add_row({"Chicago",
                    util::fmt(cmp.filter_area("Chicago").mean_cr()[coa], 2),
                    util::fmt(paper.chicago, 2)});
  headline.add_row({"Atlanta",
                    util::fmt(cmp.filter_area("Atlanta").mean_cr()[coa], 2),
                    util::fmt(paper.atlanta, 2)});
  std::printf("%s\n", headline.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idlered;
  bench::BenchRun run("fig4_vehicle_test", argc, argv);

  const auto fleet = std::make_shared<const sim::Fleet>(
      traces::generate_study_fleet(20140601));
  std::printf("synthetic NREL-like cohort: %zu vehicles "
              "(217 California + 312 Chicago + 653 Atlanta), one week each\n\n",
              fleet->size());

  engine::EvalPlan plan;
  plan.strategies = engine::standard_strategy_set();
  for (double b : {costmodel::kPaperBreakEvenSsv,
                   costmodel::kPaperBreakEvenConventional}) {
    plan.points.push_back(engine::PlanPoint{b, b, fleet});
  }
  engine::EvalSession session(std::move(plan));
  const auto report = session.run();

  print_cohort(report.points[0], "stop-start vehicles",
               PaperMeans{1.11, 1.32, 1.10, 1169});
  print_cohort(report.points[1], "vehicles without SSS",
               PaperMeans{1.35, 1.42, 1.35, 977});

  std::printf("engine: %zu cells on %d threads in %.3f s\n", report.cells,
              report.threads, report.wall_seconds);
  run.stage_report(report);

  // Batched COA pass: re-derive every vehicle's strategy selection through
  // the arena LP (one solve_constrained_lp_batch call per cohort) and
  // cross-check against the closed-form choose_strategy(). Mismatches are
  // reported, not gated — the LP and the closed form agree exactly except
  // on measure-zero coefficient ties.
  lp::WorkspacePool pool(2, 3);
  util::JsonValue batch_payload = util::JsonValue::object();
  for (double b : {costmodel::kPaperBreakEvenSsv,
                   costmodel::kPaperBreakEvenConventional}) {
    const bench::CoaBatchSummary batch = bench::coa_lp_batch(*fleet, b, pool);
    std::printf("batched COA LP (B=%.0f): %zu solves in %.4f s "
                "(%.0f solves/sec), %zu closed-form mismatches "
                "[TOI=%zu DET=%zu b-DET=%zu N-Rand=%zu]\n",
                b, batch.solves, batch.seconds, batch.solves_per_sec(),
                batch.mismatches, batch.strategy_counts[0],
                batch.strategy_counts[1], batch.strategy_counts[2],
                batch.strategy_counts[3]);

    util::JsonValue point = util::JsonValue::object();
    point.set("break_even", b);
    point.set("solves", static_cast<double>(batch.solves));
    point.set("seconds", batch.seconds);
    point.set("solves_per_sec", batch.solves_per_sec());
    point.set("closed_form_mismatches",
              static_cast<double>(batch.mismatches));
    for (std::size_t s = 0; s < 4; ++s) {
      point.set("picks_" + core::to_string(static_cast<core::Strategy>(s)),
                static_cast<double>(batch.strategy_counts[s]));
    }
    batch_payload.set("B" + util::fmt(b, 0), std::move(point));
  }
  run.stage("coa_lp_batch", std::move(batch_payload));
  return 0;
}
