// Validation V1: do the mechanistic substrates corroborate the statistical
// stop-length model? Compares four independent stop sources — the
// NREL-like statistical mixture, the queueing intersection model, the
// coordinated/uncoordinated arterial corridors, and the microscopic IDM
// simulator — on their (mu_B-, q_B+) statistics, heavy-tail KS verdicts,
// and the strategy COA selects on each.
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_run.h"
#include "core/crand.h"
#include "core/proposed.h"
#include "sim/evaluator.h"
#include "stats/descriptive.h"
#include "stats/ks_test.h"
#include "traces/fleet_generator.h"
#include "traffic/arterial.h"
#include "traffic/intersection.h"
#include "traffic/microsim.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;

void report(const std::string& label, const std::vector<double>& stops,
            util::Table& table) {
  if (stops.size() < 30) {
    table.add_row({label, "-", "-", "-", "-", "-", "-", "(too few stops)"});
    return;
  }
  const auto s = dist::ShortStopStats::from_sample(stops, kB);
  core::ProposedPolicy coa(kB, stops);
  const auto ks = stats::ks_test_exponential(stops);
  const auto ext = core::choose_strategy_extended(s, kB);
  table.add_row(
      {label, std::to_string(stops.size()),
       util::fmt(stats::mean(stops), 1), util::fmt(s.mu_b_minus / kB, 3),
       util::fmt(s.q_b_plus, 3),
       ks.reject_at(0.01) ? "non-exp" : "exp-like",
       core::to_string(coa.choice().strategy),
       ext.uses_c_rand ? "c-Rand(" + util::fmt(ext.c, 1) + "s)"
                       : core::to_string(ext.classic.strategy)});
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("validation_substrates", argc, argv);
  std::printf("%s", util::banner("Validation V1: stop-length substrates "
                                 "(B = 28 s)").c_str());

  util::Table table({"substrate", "stops", "mean (s)", "mu_B-/B", "q_B+",
                     "KS verdict", "COA picks", "extended picks"});
  util::Rng rng(20140601);

  {
    const auto law = traces::area_stop_distribution(traces::chicago());
    report("statistical NREL-like (Chicago)", law->sample_many(rng, 30000),
           table);
  }
  {
    traffic::IntersectionConfig cfg;
    cfg.arrival_rate_per_s = 0.15;
    traffic::IntersectionSimulator sim(cfg);
    util::Rng fork = rng.fork(1);
    report("queueing intersection (rho=0.6)", sim.simulate(1.0e6, fork),
           table);
  }
  {
    util::Rng fork = rng.fork(2);
    traffic::ArterialSimulator sim(
        traffic::green_wave(8, 90.0, 45.0, 60.0));
    std::vector<double> stops;
    for (int i = 0; i < 3000; ++i) {
      const auto trip = sim.simulate_trip(fork);
      stops.insert(stops.end(), trip.begin(), trip.end());
    }
    report("arterial, green wave", stops, table);
  }
  {
    util::Rng cfg_rng = rng.fork(3);
    util::Rng fork = rng.fork(4);
    traffic::ArterialSimulator sim(
        traffic::uncoordinated(8, 90.0, 45.0, 60.0, cfg_rng));
    std::vector<double> stops;
    for (int i = 0; i < 3000; ++i) {
      const auto trip = sim.simulate_trip(fork);
      stops.insert(stops.end(), trip.begin(), trip.end());
    }
    report("arterial, uncoordinated", stops, table);
  }
  {
    traffic::MicrosimConfig cfg;
    cfg.signal.cycle_s = 90.0;
    cfg.signal.green_s = 45.0;
    cfg.arrival_rate_per_s = 0.12;
    traffic::MicroSimulator sim(cfg);
    util::Rng fork = rng.fork(5);
    report("IDM microsimulation", sim.stop_durations(1.0e5, fork), table);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: every mechanistic source lands in the same region of the\n"
      "(mu_B-, q_B+) plane as the calibrated statistical model and draws\n"
      "the same strategy selection — signal-dominated stop processes put\n"
      "COA in its TOI/DET/randomized bands exactly as the NREL data did.\n"
      "Pure signal-queue sources are bounded by a few cycles (KS verdict\n"
      "may read exp-like); the heavy tail of real data comes from parking\n"
      "events, which the statistical model adds via its Pareto component.\n");
  return 0;
}
