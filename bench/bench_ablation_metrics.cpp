// Ablation A7: metric choice — CR (ratio of expectations, the paper's
// eq. 5) vs CR' (expectation of ratios, Khanafer et al.'s eq. 8). The two
// can rank strategies differently; this bench shows where and validates
// the published MOM-Rand CR' bound.
#include <cstdio>

#include "common/bench_run.h"
#include "analysis/metrics.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "dist/parametric.h"
#include "sim/evaluator.h"
#include "traces/area_profiles.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("ablation_metrics", argc, argv);
  using namespace idlered;
  constexpr double kB = 28.0;

  std::printf("%s", util::banner("Ablation A7: CR (eq. 5) vs CR' (eq. 8)"
                                 ).c_str());

  util::Rng rng(2718);
  const auto law = traces::area_stop_distribution(traces::chicago());
  const auto stops = law->sample_many(rng, 100000);
  const auto stats = dist::ShortStopStats::from_sample(stops, kB);

  double mu_full = 0.0;
  for (double y : stops) mu_full += y;
  mu_full /= static_cast<double>(stops.size());

  core::ProposedPolicy coa(kB, stats);
  struct Row {
    const char* name;
    core::PolicyPtr policy;
  };
  const Row rows[] = {
      {"TOI", core::make_toi(kB)},
      {"NEV", core::make_nev(kB)},
      {"DET", core::make_det(kB)},
      {"N-Rand", core::make_n_rand(kB)},
      {"MOM-Rand", core::make_mom_rand(kB, mu_full)},
  };

  util::Table table({"strategy", "CR (ratio of E)", "CR' (E of ratios)"});
  for (const Row& r : rows) {
    table.add_row({r.name,
                   util::fmt(sim::evaluate(*r.policy, stops).cr(), 3),
                   util::fmt(analysis::expected_ratio_cr(*r.policy, stops),
                             3)});
  }
  table.add_row({"COA", util::fmt(sim::evaluate(coa, stops).cr(), 3),
                 util::fmt(analysis::expected_ratio_cr(coa, stops), 3)});
  std::printf("%s\n", table.str().c_str());

  std::printf("%s", util::banner("MOM-Rand CR' bound validation").c_str());
  util::Table bound_table({"law", "mu", "CR' measured", "CR' bound"});
  for (double mean : {5.0, 10.0, 20.0}) {
    dist::Exponential exp_law(mean);
    const auto mom = core::make_mom_rand(kB, exp_law.mean());
    bound_table.add_row(
        {"Exponential(" + util::fmt(mean, 0) + ")", util::fmt(mean, 1),
         util::fmt(analysis::expected_ratio_cr(*mom, exp_law), 4),
         util::fmt(analysis::mom_rand_cr_prime_bound(mean, kB), 4)});
  }
  std::printf("%s\n", bound_table.str().c_str());
  std::printf("Reading: the two metrics genuinely disagree — on this "
              "workload COA/TOI lead under CR (total cost) while DET leads "
              "under CR' (per-stop fairness), because CR' weights the many "
              "short stops where TOI pays B for an offline cost of "
              "seconds. The paper optimizes CR, which tracks the fuel "
              "actually burned.\n");
  return 0;
}
