// Extension X1: the c-Rand reproduction finding.
//
// Maps where the truncated-support randomized strategy (c-Rand) strictly
// improves on the paper's four-vertex selector across the (mu_B-/B, q_B+)
// plane, reports the headline counterexample with three independent
// verifications (closed form, adversary LP, double-oracle minimax), and
// quantifies the realized gain on trace workloads.
#include <cstdio>

#include "common/bench_run.h"
#include "analysis/adversary.h"
#include "analysis/minimax.h"
#include "core/crand.h"
#include "core/proposed.h"
#include "sim/evaluator.h"
#include "traces/fleet_generator.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;

dist::ShortStopStats stats_at(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("extension_crand", argc, argv);
  std::printf("%s", util::banner("Extension X1: c-Rand vs the paper's "
                                 "four-vertex selector").c_str());

  // Improvement map: '.' infeasible, '-' no change, digits = % improvement.
  const int n = 48;
  std::printf("improvement of the extended selector over the paper's "
              "(rows: q_B+ descending, cols: mu_B-/B ascending;\n"
              " '-' none, '1'-'9' ~ percent, '+' means >= 10%%)\n");
  int improved_cells = 0;
  int feasible_cells = 0;
  double max_improvement_pct = 0.0;
  for (int j = n - 1; j >= 0; --j) {
    const double q = (j + 0.5) / n;
    for (int i = 0; i < n; ++i) {
      const double mu_frac = (i + 0.5) / n;
      const auto s = stats_at(mu_frac, q);
      if (!s.feasible(kB)) {
        std::printf(".");
        continue;
      }
      ++feasible_cells;
      const auto ext = core::choose_strategy_extended(s, kB);
      const double pct =
          100.0 * ext.improvement / ext.classic.expected_cost;
      max_improvement_pct = std::max(max_improvement_pct, pct);
      if (pct < 0.5) {
        std::printf("-");
      } else {
        ++improved_cells;
        std::printf("%c", pct >= 9.5 ? '+'
                                     : static_cast<char>('0' + static_cast<int>(
                                           std::lround(pct))));
      }
    }
    std::printf("\n");
  }
  std::printf("\nc-Rand improves on %d of %d feasible cells (max "
              "improvement %.1f%%)\n\n",
              improved_cells, feasible_cells, max_improvement_pct);

  // Headline counterexample with three-way verification.
  std::printf("%s", util::banner("headline counterexample: mu = 0.02 B, "
                                 "q = 0.3 (B = 28)").c_str());
  const auto s = stats_at(0.02, 0.3);
  const auto classic = core::choose_strategy(s, kB);
  const auto ext = core::choose_strategy_extended(s, kB);

  util::Table table({"method", "worst-case expected cost"});
  table.add_row({"paper's selector (" + core::to_string(classic.strategy) +
                     ", closed form)",
                 util::fmt(classic.expected_cost, 4)});
  table.add_row({"c-Rand closed form (c* = " + util::fmt(ext.c, 2) + " s)",
                 util::fmt(ext.expected_cost, 4)});
  {
    analysis::AdversaryOptions opt;
    opt.grid_short = 2000;
    opt.extra_short_points = {ext.c};
    const auto adv = analysis::worst_case_adversary(
        *core::make_c_rand(kB, ext.c), s, opt);
    table.add_row({"c-Rand vs LP adversary", util::fmt(adv.expected_cost, 4)});
  }
  {
    analysis::MinimaxOptions opt;
    opt.threshold_grid = 160;
    opt.max_iterations = 120;
    const auto mm = analysis::solve_minimax(s, kB, opt);
    table.add_row({"double-oracle minimax (no family assumed)",
                   util::fmt(mm.value, 4)});
  }
  std::printf("%s\n", table.str().c_str());

  // Realized gain on trace workloads where the extension fires.
  std::printf("%s", util::banner("realized CR on synthetic workloads").c_str());
  util::Table traces_table({"workload", "classic COA CR", "extended CR",
                            "extension used"});
  util::Rng rng(20140601);
  for (double mean_stop : {15.0, 30.0, 60.0, 120.0}) {
    const auto law = traces::scaled_stop_distribution(traces::chicago(),
                                                      mean_stop);
    const auto stops = law->sample_many(rng, 100000);
    const auto est = dist::ShortStopStats::from_sample(stops, kB);
    const auto ext_choice = core::choose_strategy_extended(est, kB);
    core::ProposedPolicy classic_policy(kB, est);
    const double classic_cr =
        sim::evaluate(classic_policy, stops).cr();
    double extended_cr = classic_cr;
    if (ext_choice.uses_c_rand) {
      extended_cr = sim::evaluate(
                        *core::make_c_rand(kB, ext_choice.c), stops)
                        .cr();
    }
    traces_table.add_row({"Chicago shape, mean " + util::fmt(mean_stop, 0) +
                              " s",
                          util::fmt(classic_cr, 4), util::fmt(extended_cr, 4),
                          ext_choice.uses_c_rand ? "yes" : "no"});
  }
  std::printf("%s\n", traces_table.str().c_str());
  std::printf(
      "Note: c-Rand optimizes the WORST case over Q(mu, q); on benign "
      "actual laws it may realize a slightly higher CR than the classic "
      "pick while carrying a strictly better guarantee.\n");
  return 0;
}
