// Multislope (k-slope) sweep: where does a third engine state pay?
//
// Runs the Figure-5 methodology (Chicago-shaped law rescaled per mean stop
// length, B = 28 s) over the standard two-slope lineup PLUS the multislope
// family on a 3-slope profile (idle / HVAC-preserving intermediate state /
// deep off), and reports per-point mean CR of the 3-slope generalized COA
// against the paper's two-slope COA. Because every policy's CR denominator
// stays the two-slope offline min(y, B), a mean CR below COA's — or below
// 1.0 — is a real fuel saving the two-state controller cannot reach.
//
// Invariant-gated exit code (all three must hold):
//   1. engine thread-invariance: full-width report bit-identical to 1
//      thread;
//   2. the arena-LP generalized COA matches the closed form with zero
//      mismatches on every sweep cohort — both on the k = 2 profile
//      (where the pass IS the two-slope COA differential) and on the
//      3-slope profile (per-transition);
//   3. at least one sweep regime where the 3-slope MS-COA beats the
//      two-slope COA on mean CR.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bench_run.h"
#include "common/sweep.h"
#include "costmodel/multislope.h"
#include "engine/strategy.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;
  bench::BenchRun run("multislope", argc, argv);

  std::printf("%s",
              util::banner("Multislope sweep: 3-slope engine-state profile "
                           "vs the two-slope lineup (B = 28 s)").c_str());

  bench::SweepConfig config = bench::default_sweep(28.0);
  const auto fleets = bench::build_sweep_fleets(config);

  // Intermediate state at 0.3x idle draw for 15 s-equivalent switch cost
  // (the HVAC-preserving tier of ablation A5); deep off stays the paper's
  // B = 28 s so the offline accounting is unchanged.
  const auto profile3 = costmodel::SlopeProfile::three_state(0.3, 15.0, 28.0);
  const auto profile2 = costmodel::SlopeProfile::two_slope(28.0);
  std::printf("3-slope profile: %s\n\n", profile3.describe().c_str());

  engine::EvalPlan plan = bench::make_sweep_plan(config, fleets);
  const auto ms = engine::multislope_strategy_set(profile3);
  plan.strategies.insert(plan.strategies.end(), ms.begin(), ms.end());

  engine::EvalSession wide(plan);
  const auto report = wide.run();
  engine::EvalPlan plan1 = plan;
  plan1.threads = 1;
  engine::EvalSession narrow(std::move(plan1));
  const auto report1 = narrow.run();

  // Invariant 1: bit-identical CRs regardless of pool width.
  bool bitwise = true;
  for (std::size_t p = 0; p < report.points.size(); ++p) {
    const auto& vs = report.points[p].comparison.vehicles;
    const auto& vs1 = report1.points[p].comparison.vehicles;
    for (std::size_t v = 0; v < vs.size(); ++v)
      for (std::size_t s = 0; s < vs[v].cr.size(); ++s)
        if (vs[v].cr[s] != vs1[v].cr[s]) bitwise = false;
  }

  const auto index_of = [&](const char* name) {
    return static_cast<std::size_t>(
        std::find(report.strategy_names.begin(), report.strategy_names.end(),
                  name) -
        report.strategy_names.begin());
  };
  const std::size_t i_coa = index_of("COA");
  const std::size_t i_ms_coa = index_of("MS-COA");
  const std::size_t i_ms_det = index_of("MS-DET");
  const std::size_t i_ms_rand = index_of("MS-Rand");

  // Invariant 3: the fig5-style table, mean CR of COA vs the 3-slope
  // family; count the regimes (sweep points) where 3 slopes win.
  util::Table table({"mean_stop_s", "COA", "MS-COA(k3)", "MS-DET(k3)",
                     "MS-Rand(k3)", "k3 wins"});
  int win_points = 0;
  double best_gain = 0.0;
  double first_win_mean = 0.0;
  util::JsonValue series = util::JsonValue::array();
  for (const auto& rp : report.points) {
    const auto mean = rp.comparison.mean_cr();
    const bool wins = mean[i_ms_coa] < mean[i_coa] - 1e-9;
    if (wins) {
      if (win_points == 0) first_win_mean = rp.axis;
      ++win_points;
      best_gain = std::max(best_gain, mean[i_coa] - mean[i_ms_coa]);
    }
    table.add_row({util::fmt(rp.axis, 1), util::fmt(mean[i_coa], 3),
                   util::fmt(mean[i_ms_coa], 3), util::fmt(mean[i_ms_det], 3),
                   util::fmt(mean[i_ms_rand], 3), wins ? "yes" : ""});
    util::JsonValue row = util::JsonValue::object();
    row.set("mean_stop_s", rp.axis);
    row.set("mean_cr_coa", mean[i_coa]);
    row.set("mean_cr_ms_coa", mean[i_ms_coa]);
    row.set("mean_cr_ms_det", mean[i_ms_det]);
    row.set("mean_cr_ms_rand", mean[i_ms_rand]);
    row.set("k3_beats_k2", wins);
    series.push_back(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("3-slope MS-COA beats two-slope COA on mean CR at %d/%zu "
              "sweep points (first win at mean %.1f s, best mean-CR gain "
              "%.3f).\n",
              win_points, report.points.size(), first_win_mean, best_gain);

  // Invariant 2: the generalized COA through the arena LP, one batched
  // solve_constrained_lp_batch pass per cohort, cross-checked against the
  // closed form. k = 2 first (the two-slope COA differential), then the
  // 3-slope per-transition pass.
  lp::WorkspacePool pool(2, 3);
  std::size_t solves_k2 = 0, mismatches_k2 = 0;
  std::size_t solves_k3 = 0, mismatches_k3 = 0;
  double seconds_k2 = 0.0, seconds_k3 = 0.0;
  for (const auto& pf : fleets) {
    const auto b2 = bench::multislope_coa_lp_batch(*pf.fleet, profile2, pool);
    solves_k2 += b2.solves;
    mismatches_k2 += b2.mismatches;
    seconds_k2 += b2.seconds;
    const auto b3 = bench::multislope_coa_lp_batch(*pf.fleet, profile3, pool);
    solves_k3 += b3.solves;
    mismatches_k3 += b3.mismatches;
    seconds_k3 += b3.seconds;
  }
  std::printf("\nbatched generalized-COA LP: k=2 %zu solves (%.4f s, %zu "
              "mismatches vs closed-form COA) | k=3 %zu solves (%.4f s, "
              "%zu mismatches vs per-transition closed form)\n",
              solves_k2, seconds_k2, mismatches_k2, solves_k3, seconds_k3,
              mismatches_k3);
  std::printf("engine threads=%d vs threads=1: %s\n", report.threads,
              bitwise ? "bit-identical" : "MISMATCH");

  run.stage_report(report);
  util::JsonValue extra = util::JsonValue::object();
  extra.set("bitwise_thread_invariant", bitwise);
  extra.set("profile", profile3.describe());
  extra.set("k3_win_points", static_cast<double>(win_points));
  extra.set("first_win_mean_stop_s", first_win_mean);
  extra.set("best_mean_cr_gain", best_gain);
  extra.set("series", std::move(series));
  run.stage("multislope_sweep", std::move(extra));
  // Leaf names follow the bench_diff gating conventions: `*_per_sec`
  // must not drop (throughput), `*_failures` must not rise at all (the
  // differential is an exact invariant), `vehicles`/`cells` are config.
  util::JsonValue lp_payload = util::JsonValue::object();
  lp_payload.set("vehicles",
                 static_cast<double>(config.vehicles_per_point));
  lp_payload.set("cells", static_cast<double>(solves_k2 + solves_k3));
  lp_payload.set("k2_solves_per_sec",
                 seconds_k2 > 0.0 ? static_cast<double>(solves_k2) / seconds_k2
                                  : 0.0);
  lp_payload.set("k2_mismatch_failures", static_cast<double>(mismatches_k2));
  lp_payload.set("k3_solves_per_sec",
                 seconds_k3 > 0.0 ? static_cast<double>(solves_k3) / seconds_k3
                                  : 0.0);
  lp_payload.set("k3_mismatch_failures", static_cast<double>(mismatches_k3));
  run.stage("multislope_coa_lp_batch", std::move(lp_payload));

  const bool ok =
      bitwise && mismatches_k2 == 0 && mismatches_k3 == 0 && win_points >= 1;
  std::printf("\ninvariants: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
