// Ablation A4: expected-cost evaluation vs Monte-Carlo threshold sampling.
//
// The figure reproductions evaluate randomized policies by their exact
// per-stop expected cost (eq. 19/20). A deployed controller instead draws
// one threshold per stop. This bench quantifies the gap as a function of
// trace length, confirming the O(1/sqrt(n)) convergence that justifies
// expected-mode evaluation.
#include <cmath>
#include <cstdio>

#include "common/bench_run.h"
#include "core/policies.h"
#include "sim/evaluator.h"
#include "traces/area_profiles.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  idlered::bench::BenchRun bench_run("ablation_sampling", argc, argv);
  using namespace idlered;
  constexpr double kB = 28.0;
  constexpr int kRepeats = 30;

  std::printf("%s", util::banner("Ablation A4: sampled vs expected "
                                 "evaluation of randomized policies").c_str());

  const auto law = traces::area_stop_distribution(traces::chicago());
  const auto policy = core::make_n_rand(kB);

  util::Table table({"trace stops n", "expected CR", "mean sampled CR",
                     "|gap|", "sampled CR stddev", "stddev * sqrt(n)"});
  util::Rng rng(31415);
  for (int n : {10, 30, 100, 300, 1000, 3000, 10000}) {
    util::Rng trace_rng = rng.fork(static_cast<std::uint64_t>(n));
    const auto stops = law->sample_many(trace_rng, static_cast<std::size_t>(n));
    const double expected_cr =
        sim::evaluate(*policy, stops).cr();

    double sum = 0.0;
    double sq = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
      util::Rng eval_rng = rng.fork(1000u + static_cast<std::uint64_t>(r) +
                                    static_cast<std::uint64_t>(n) * 100u);
      const double cr =
          sim::evaluate(*policy, stops,
                        {sim::EvalMode::kSampled, &eval_rng})
              .cr();
      sum += cr;
      sq += cr * cr;
    }
    const double mean = sum / kRepeats;
    const double var = std::max(0.0, sq / kRepeats - mean * mean);
    const double sd = std::sqrt(var);
    table.add_row({std::to_string(n), util::fmt(expected_cr, 4),
                   util::fmt(mean, 4), util::fmt(std::abs(mean - expected_cr), 4),
                   util::fmt(sd, 4), util::fmt(sd * std::sqrt(n), 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: the sampled CR is unbiased and its spread shrinks "
              "as 1/sqrt(n) (last column ~ constant), so expected-mode "
              "evaluation is the right tool for the figure reproductions.\n");
  return 0;
}
