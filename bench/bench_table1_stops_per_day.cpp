// Reproduction of Table 1 (Stops Per Day in 3 Locations): mean, standard
// deviation, and P{X <= mu + 2 sigma} of stops/day over each area's
// stops-per-day cohort, plus the mu + 2 sigma amortization bound the battery
// wear model uses (~32.43 in the paper).
//
// The three area cohorts are sampled on the engine's thread pool (one task
// per area, each with its own pre-forked RNG stream writing to its own
// slot, so results are independent of scheduling). The table is archived
// to BENCH_table1_stops_per_day.json.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/bench_run.h"
#include "engine/thread_pool.h"
#include "stats/descriptive.h"
#include "traces/fleet_generator.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;
  bench::BenchRun run("table1_stops_per_day", argc, argv);

  std::printf("%s", util::banner("Table 1: stops per day in 3 locations").c_str());

  util::Table table({"Location", "Vehicles", "Mean (paper)", "Mean (ours)",
                     "Std (paper)", "Std (ours)", "P{X<=mu+2s} (paper)",
                     "P{X<=mu+2s} (ours)"});

  struct PaperRow {
    const char* name;
    double mean;
    double std;
    double tail;
  };
  const PaperRow paper[] = {
      {"Atlanta", 10.37, 8.42, 0.9091},
      {"Chicago", 12.49, 9.97, 0.9534},
      {"California", 9.37, 7.68, 0.9553},
  };
  constexpr std::size_t kAreas = sizeof paper / sizeof paper[0];

  // Fork the per-area streams serially (same schedule as the pre-engine
  // bench), then fan the sampling out.
  struct AreaJob {
    traces::AreaProfile profile;
    util::Rng rng;
    double mean = 0.0;
    double std = 0.0;
    double tail = 0.0;
  };
  util::Rng rng(20140601);
  std::vector<AreaJob> jobs;
  for (const auto& row : paper) {
    traces::AreaProfile profile;
    for (const auto& a : traces::all_areas()) {
      if (a.name == row.name) profile = a;
    }
    jobs.push_back(AreaJob{
        profile, rng.fork(std::hash<std::string>{}(profile.name))});
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine::ThreadPool pool;
  pool.parallel_for(kAreas, [&](std::size_t i) {
    AreaJob& job = jobs[i];
    // One week of days per vehicle in the stops/day dataset.
    const int n_draws =
        job.profile.num_vehicles_stops_dataset * job.profile.days_recorded;
    const auto xs =
        traces::sample_stops_per_day(job.profile, n_draws, job.rng);
    job.mean = stats::mean(xs);
    job.std = stats::stddev(xs);
    job.tail = stats::fraction_at_most(xs, job.mean + 2.0 * job.std);
  });
  const auto t1 = std::chrono::steady_clock::now();

  util::JsonValue areas_json = util::JsonValue::array();
  double pooled_mu_plus_2sigma = 0.0;
  double pooled_weight = 0.0;
  for (std::size_t i = 0; i < kAreas; ++i) {
    const PaperRow& row = paper[i];
    const AreaJob& job = jobs[i];
    table.add_row({row.name,
                   std::to_string(job.profile.num_vehicles_stops_dataset),
                   util::fmt(row.mean, 2), util::fmt(job.mean, 2),
                   util::fmt(row.std, 2), util::fmt(job.std, 2),
                   util::fmt(row.tail, 4), util::fmt(job.tail, 4)});
    pooled_mu_plus_2sigma +=
        (job.mean + 2.0 * job.std) * job.profile.num_vehicles_stops_dataset;
    pooled_weight += job.profile.num_vehicles_stops_dataset;

    util::JsonValue a = util::JsonValue::object();
    a.set("area", row.name);
    a.set("vehicles", job.profile.num_vehicles_stops_dataset);
    a.set("mean", job.mean);
    a.set("std", job.std);
    a.set("tail_mu_plus_2sigma", job.tail);
    areas_json.push_back(std::move(a));
  }
  const double pooled = pooled_mu_plus_2sigma / pooled_weight;
  std::printf("%s\n", table.str().c_str());
  std::printf("fleet-weighted mu + 2 sigma = %.2f stops/day "
              "(paper uses 32.43 for battery amortization)\n", pooled);

  util::JsonValue payload = util::JsonValue::object();
  payload.set("threads", pool.thread_count());
  payload.set("wall_seconds", std::chrono::duration<double>(t1 - t0).count());
  payload.set("areas", std::move(areas_json));
  payload.set("fleet_weighted_mu_plus_2sigma", pooled);
  run.stage("results", std::move(payload));
  return 0;
}
