// Reproduction of Table 1 (Stops Per Day in 3 Locations): mean, standard
// deviation, and P{X <= mu + 2 sigma} of stops/day over each area's
// stops-per-day cohort, plus the mu + 2 sigma amortization bound the battery
// wear model uses (~32.43 in the paper).
#include <cstdio>

#include "stats/descriptive.h"
#include "traces/fleet_generator.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace idlered;

  std::printf("%s", util::banner("Table 1: stops per day in 3 locations").c_str());

  util::Table table({"Location", "Vehicles", "Mean (paper)", "Mean (ours)",
                     "Std (paper)", "Std (ours)", "P{X<=mu+2s} (paper)",
                     "P{X<=mu+2s} (ours)"});

  struct PaperRow {
    const char* name;
    double mean;
    double std;
    double tail;
  };
  const PaperRow paper[] = {
      {"Atlanta", 10.37, 8.42, 0.9091},
      {"Chicago", 12.49, 9.97, 0.9534},
      {"California", 9.37, 7.68, 0.9553},
  };

  util::Rng rng(20140601);
  double pooled_mu_plus_2sigma = 0.0;
  double pooled_weight = 0.0;
  for (const auto& row : paper) {
    // Find the matching profile.
    traces::AreaProfile profile;
    for (const auto& a : traces::all_areas()) {
      if (a.name == row.name) profile = a;
    }
    util::Rng area_rng = rng.fork(std::hash<std::string>{}(profile.name));
    // One week of days per vehicle in the stops/day dataset.
    const int n_draws =
        profile.num_vehicles_stops_dataset * profile.days_recorded;
    const auto xs = traces::sample_stops_per_day(profile, n_draws, area_rng);

    const double mean = stats::mean(xs);
    const double std = stats::stddev(xs);
    const double tail = stats::fraction_at_most(xs, mean + 2.0 * std);
    table.add_row({row.name,
                   std::to_string(profile.num_vehicles_stops_dataset),
                   util::fmt(row.mean, 2), util::fmt(mean, 2),
                   util::fmt(row.std, 2), util::fmt(std, 2),
                   util::fmt(row.tail, 4), util::fmt(tail, 4)});
    pooled_mu_plus_2sigma +=
        (mean + 2.0 * std) * profile.num_vehicles_stops_dataset;
    pooled_weight += profile.num_vehicles_stops_dataset;
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("fleet-weighted mu + 2 sigma = %.2f stops/day "
              "(paper uses 32.43 for battery amortization)\n",
              pooled_mu_plus_2sigma / pooled_weight);
  return 0;
}
