// Engine scaling study: the fleet-evaluation engine against the legacy
// serial loop on a large workload, across thread counts.
//
// Workload: a Chicago-shaped fleet evaluated at a grid of break-even
// values (the Figure 5/6 + Appendix C shape fleets hit at scale). All
// sweep points share one fleet object, so the per-vehicle statistics
// caches (sorted stops + prefix sums) are built once and serve every B —
// the engine's algorithmic edge over the legacy loop even at 1 thread.
//
// Prints wall times, speedups and a bitwise thread-invariance check;
// archives everything to BENCH_engine_scaling.json. Thread counts beyond
// the machine's cores are still run (the determinism contract must hold
// under oversubscription) but their speedups are reported against the
// hardware limit.
//
// Usage: bench_engine_scaling [vehicles] [sweep_points]
//   vehicles      fleet size                  (default 600)
//   sweep_points  break-even grid size        (default 12)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <vector>

#include "common/bench_run.h"
#include "engine/eval_session.h"
#include "sim/fleet_eval.h"
#include "traces/fleet_generator.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;
  bench::BenchRun run("engine_scaling", argc, argv);

  // Positional args (vehicles, sweep points) skip the envelope's --trace
  // flags wherever they appear on the line.
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--trace", 0) == 0) continue;
    pos.push_back(argv[i]);
  }
  const int vehicles = !pos.empty() ? std::atoi(pos[0]) : 600;
  const int sweep_points = pos.size() > 1 ? std::atoi(pos[1]) : 12;

  std::printf("%s", util::banner("Engine scaling: parallel fleet evaluation "
                                 "vs the serial loop").c_str());

  traces::AreaProfile profile = traces::chicago();
  profile.num_vehicles_driving = vehicles;
  util::Rng rng(20140601);
  const auto fleet = std::make_shared<const sim::Fleet>(
      traces::generate_area_fleet(profile, rng));
  std::size_t total_stops = 0;
  for (const auto& t : *fleet) total_stops += t.num_stops();

  const std::vector<double> b_grid = util::logspace(10.0, 90.0, sweep_points);
  std::printf("workload: %zu vehicles, %zu stops, %d break-even points, "
              "%zu strategies\n\n",
              fleet->size(), total_stops, sweep_points,
              engine::standard_strategy_set().size());

  // Legacy serial reference: one compare_strategies pass per B.
  const auto specs = sim::standard_strategy_set();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<sim::FleetComparison> serial;
  serial.reserve(b_grid.size());
  for (double b : b_grid)
    serial.push_back(sim::compare_strategies(*fleet, b, specs));
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();

  auto make_plan = [&](int threads) {
    engine::EvalPlan plan;
    plan.strategies = engine::standard_strategy_set();
    plan.threads = threads;
    for (double b : b_grid)
      plan.points.push_back(engine::PlanPoint{b, b, fleet});
    return plan;
  };

  const unsigned hw = std::thread::hardware_concurrency();
  util::Table table({"configuration", "wall s", "speedup vs serial",
                     "bit-identical"});
  table.add_row({"legacy serial loop", util::fmt(serial_s, 3), "1.00",
                 "(reference)"});

  util::JsonValue runs_json = util::JsonValue::array();
  engine::EvalReport baseline;  // threads = 1
  bool all_bitwise = true;
  double best_speedup = 0.0;
  engine::EvalReport best_report;
  for (int threads : {1, 2, 4, 8}) {
    engine::EvalSession session(make_plan(threads));
    engine::EvalReport report = session.run();

    bool bitwise = true;
    if (threads == 1) {
      // The 1-thread engine run is the bitwise reference; it must also
      // match the legacy loop's CRs (trace-order vs sorted-order statistics
      // agree to the last bit on the dominant strategies, ~1 ulp on COA —
      // compare with a tolerance here, exact equality across threads below).
      baseline = report;
    } else {
      for (std::size_t p = 0; p < report.points.size() && bitwise; ++p) {
        const auto& a = report.points[p].comparison.vehicles;
        const auto& b = baseline.points[p].comparison.vehicles;
        for (std::size_t v = 0; v < a.size() && bitwise; ++v)
          for (std::size_t s = 0; s < a[v].cr.size(); ++s)
            if (a[v].cr[s] != b[v].cr[s]) {
              bitwise = false;
              break;
            }
      }
      all_bitwise = all_bitwise && bitwise;
    }
    const double speedup =
        report.wall_seconds > 0.0 ? serial_s / report.wall_seconds : 0.0;
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_report = report;
    }
    char label[64];
    std::snprintf(label, sizeof label, "engine, %d thread%s%s", threads,
                  threads == 1 ? "" : "s",
                  hw != 0 && threads > static_cast<int>(hw)
                      ? " (oversubscribed)" : "");
    table.add_row({label, util::fmt(report.wall_seconds, 3),
                   util::fmt(speedup, 2),
                   threads == 1 ? "(reference)" : (bitwise ? "yes" : "NO")});

    util::JsonValue r = util::JsonValue::object();
    r.set("threads", threads);
    r.set("wall_seconds", report.wall_seconds);
    r.set("speedup_vs_serial", speedup);
    r.set("cells", report.cells);
    runs_json.push_back(std::move(r));
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("hardware threads: %u  |  thread-count invariance: %s\n", hw,
              all_bitwise ? "bit-identical across 1/2/4/8 threads"
                          : "MISMATCH — determinism bug");
  if (hw < 8) {
    std::printf("note: this machine exposes %u core%s; multi-thread "
                "speedups are bounded by the hardware, not the engine.\n",
                hw, hw == 1 ? "" : "s");
  }

  util::JsonValue payload = util::JsonValue::object();
  payload.set("vehicles", fleet->size());
  payload.set("stops", total_stops);
  payload.set("sweep_points", sweep_points);
  payload.set("hardware_threads", static_cast<double>(hw));
  payload.set("serial_wall_seconds", serial_s);
  payload.set("best_speedup_vs_serial", best_speedup);
  payload.set("bitwise_thread_invariant", all_bitwise);
  payload.set("runs", std::move(runs_json));
  run.stage("results", std::move(payload));
  return all_bitwise ? 0 : 1;
}
