// Engine scaling study on the Figure-5 sweep workload: the scalar and
// batch evaluation kernels against the legacy serial loop, across thread
// counts.
//
// Workload: the Figure 5 reproduction shape — Chicago-law fleets rescaled
// to a grid of mean stop lengths, evaluated at B = 28 s with the standard
// six-strategy lineup (bench/common/sweep.h). This is the workload the
// batch kernel exists for, so its speedup here seeds the repo's perf
// trajectory (BENCH_engine_scaling.json, schema v2).
//
// Reported per (kernel, threads) configuration: wall time split into the
// cache/prewarm pass and the evaluation pass, speedup vs the legacy serial
// loop, and a bitwise thread-invariance check per kernel. The headline
// number is the single-thread eval-pass speedup of the batch kernel over
// the scalar kernel (the cache pass is identical work under either), plus
// the batch-vs-scalar CR agreement (summation-order rounding only; see
// sim/batch_kernels.h for the documented bound).
//
// Thread counts beyond the machine's cores are still run (the determinism
// contract must hold under oversubscription).
//
// Usage: bench_engine_scaling [vehicles_per_point] [sweep_points]
//   vehicles_per_point  fleet size per sweep mean   (default 150)
//   sweep_points        mean-stop-length grid size  (default 17)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/bench_run.h"
#include "common/sweep.h"
#include "sim/fleet_eval.h"
#include "util/math.h"
#include "util/table.h"

namespace {

using namespace idlered;

bool bitwise_equal(const engine::EvalReport& a, const engine::EvalReport& b) {
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& va = a.points[p].comparison.vehicles;
    const auto& vb = b.points[p].comparison.vehicles;
    for (std::size_t v = 0; v < va.size(); ++v)
      for (std::size_t s = 0; s < va[v].cr.size(); ++s)
        if (va[v].cr[s] != vb[v].cr[s]) return false;
  }
  return true;
}

double max_relative_cr_gap(const engine::EvalReport& a,
                           const engine::EvalReport& b) {
  double gap = 0.0;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& va = a.points[p].comparison.vehicles;
    const auto& vb = b.points[p].comparison.vehicles;
    for (std::size_t v = 0; v < va.size(); ++v)
      for (std::size_t s = 0; s < va[v].cr.size(); ++s) {
        const double denom = std::fabs(vb[v].cr[s]);
        if (denom > 0.0)
          gap = std::max(gap, std::fabs(va[v].cr[s] - vb[v].cr[s]) / denom);
      }
  }
  return gap;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("engine_scaling", argc, argv);

  // Positional args (vehicles per point, sweep points) skip the envelope's
  // --trace flags wherever they appear on the line.
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--trace", 0) == 0) continue;
    pos.push_back(argv[i]);
  }

  std::printf("%s", util::banner("Engine scaling: scalar vs batch kernels "
                                 "on the Figure-5 sweep").c_str());

  bench::SweepConfig config = bench::default_sweep(28.0);
  if (!pos.empty()) config.vehicles_per_point = std::atoi(pos[0]);
  if (pos.size() > 1) {
    const int n = std::atoi(pos[1]);
    config.mean_stops_s = util::logspace(config.break_even / 6.0,
                                         config.break_even * 6.0, n);
  }
  const auto fleets = bench::build_sweep_fleets(config);
  std::size_t total_stops = 0;
  for (const auto& pf : fleets)
    for (const auto& t : *pf.fleet) total_stops += t.num_stops();

  std::printf("workload: fig5 sweep, %zu points x %d vehicles, %zu stops, "
              "%zu strategies, B = %.0f s\n\n",
              fleets.size(), config.vehicles_per_point, total_stops,
              engine::standard_strategy_set().size(), config.break_even);

  // Legacy serial reference: one compare_strategies pass per point.
  const auto specs = sim::standard_strategy_set();
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& pf : fleets)
    sim::compare_strategies(*pf.fleet, config.break_even, specs);
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();

  auto make_plan = [&](sim::EvalKernel kernel, int threads) {
    bench::SweepConfig c = config;
    c.threads = threads;
    engine::EvalPlan plan = bench::make_sweep_plan(c, fleets);
    plan.kernel = kernel;
    return plan;
  };

  const unsigned hw = std::thread::hardware_concurrency();
  util::Table table({"configuration", "wall s", "cache s", "eval s",
                     "speedup vs serial", "bit-identical"});
  table.add_row({"legacy serial loop", util::fmt(serial_s, 3), "-", "-",
                 "1.00", "(reference)"});

  struct KernelRow {
    sim::EvalKernel kernel;
    const char* name;
  };
  const KernelRow kernels[] = {{sim::EvalKernel::kScalar, "scalar"},
                               {sim::EvalKernel::kBatch, "batch"}};

  util::JsonValue runs_json = util::JsonValue::array();
  bool all_bitwise = true;
  double scalar_eval_1t = 0.0;
  double batch_eval_1t = 0.0;
  engine::EvalReport scalar_baseline;  // threads = 1, per-kernel reference
  engine::EvalReport batch_baseline;
  for (const KernelRow& k : kernels) {
    for (int threads : {1, 2, 4, 8}) {
      engine::EvalSession session(make_plan(k.kernel, threads));
      engine::EvalReport report = session.run();

      bool bitwise = true;
      engine::EvalReport& baseline =
          k.kernel == sim::EvalKernel::kScalar ? scalar_baseline
                                               : batch_baseline;
      if (threads == 1) {
        baseline = report;
        if (k.kernel == sim::EvalKernel::kScalar)
          scalar_eval_1t = report.eval_seconds;
        else
          batch_eval_1t = report.eval_seconds;
      } else {
        bitwise = bitwise_equal(report, baseline);
        all_bitwise = all_bitwise && bitwise;
      }
      const double speedup =
          report.wall_seconds > 0.0 ? serial_s / report.wall_seconds : 0.0;
      char label[64];
      std::snprintf(label, sizeof label, "%s kernel, %d thread%s%s", k.name,
                    threads, threads == 1 ? "" : "s",
                    hw != 0 && threads > static_cast<int>(hw)
                        ? " (oversubscribed)" : "");
      table.add_row({label, util::fmt(report.wall_seconds, 3),
                     util::fmt(report.cache_build_seconds, 3),
                     util::fmt(report.eval_seconds, 3),
                     util::fmt(speedup, 2),
                     threads == 1 ? "(reference)" : (bitwise ? "yes" : "NO")});

      util::JsonValue r = util::JsonValue::object();
      r.set("kernel", k.name);
      r.set("threads", threads);
      r.set("wall_seconds", report.wall_seconds);
      r.set("cache_build_seconds", report.cache_build_seconds);
      r.set("eval_seconds", report.eval_seconds);
      r.set("speedup_vs_serial", speedup);
      r.set("cells", report.cells);
      runs_json.push_back(std::move(r));
    }
  }

  // Kernel agreement: batch CRs differ from scalar CRs by summation-order
  // rounding only.
  const double kernel_gap =
      max_relative_cr_gap(batch_baseline, scalar_baseline);
  const double kernel_speedup_1t =
      batch_eval_1t > 0.0 ? scalar_eval_1t / batch_eval_1t : 0.0;
  const bool kernels_agree = kernel_gap < 1e-9;

  std::printf("%s\n", table.str().c_str());
  std::printf("hardware threads: %u  |  thread-count invariance: %s\n", hw,
              all_bitwise ? "bit-identical across 1/2/4/8 threads (both "
                            "kernels)"
                          : "MISMATCH — determinism bug");
  std::printf("batch kernel speedup over scalar (1 thread, eval pass): "
              "%.2fx  |  max relative CR gap %.2e (%s)\n",
              kernel_speedup_1t, kernel_gap,
              kernels_agree ? "summation-order rounding"
                            : "TOO LARGE — kernel bug");
  if (hw < 8) {
    std::printf("note: this machine exposes %u core%s; multi-thread "
                "speedups are bounded by the hardware, not the engine.\n",
                hw, hw == 1 ? "" : "s");
  }

  util::JsonValue payload = util::JsonValue::object();
  payload.set("workload", "fig5_sweep");
  payload.set("break_even", config.break_even);
  payload.set("sweep_points", fleets.size());
  payload.set("vehicles_per_point", config.vehicles_per_point);
  payload.set("stops", total_stops);
  payload.set("hardware_threads", static_cast<double>(hw));
  payload.set("serial_wall_seconds", serial_s);
  payload.set("batch_kernel_speedup_1t", kernel_speedup_1t);
  payload.set("max_kernel_cr_gap", kernel_gap);
  payload.set("bitwise_thread_invariant", all_bitwise);
  payload.set("runs", std::move(runs_json));
  run.stage("results", std::move(payload));
  return all_bitwise && kernels_agree ? 0 : 1;
}
