#include "common/bench_json.h"

#include <cstdio>
#include <exception>

namespace idlered::bench {

util::JsonValue report_to_json(const engine::EvalReport& report) {
  using util::JsonValue;

  JsonValue strategies = JsonValue::array();
  for (const std::string& name : report.strategy_names)
    strategies.push_back(name);

  JsonValue points = JsonValue::array();
  for (const auto& point : report.points) {
    JsonValue p = JsonValue::object();
    p.set("axis", point.axis);
    p.set("break_even_s", point.break_even);
    p.set("vehicles", point.comparison.vehicles.size());
    const auto means = point.comparison.mean_cr();
    const auto worsts = point.comparison.worst_cr();
    JsonValue mean_cr = JsonValue::object();
    JsonValue worst_cr = JsonValue::object();
    for (std::size_t s = 0; s < report.strategy_names.size(); ++s) {
      mean_cr.set(report.strategy_names[s], means[s]);
      worst_cr.set(report.strategy_names[s], worsts[s]);
    }
    p.set("mean_cr", std::move(mean_cr));
    p.set("worst_cr", std::move(worst_cr));
    points.push_back(std::move(p));
  }

  JsonValue out = JsonValue::object();
  out.set("mode", report.mode == engine::EvalMode::kExpected ? "expected"
                                                             : "sampled");
  out.set("threads", report.threads);
  out.set("cells", report.cells);
  out.set("wall_seconds", report.wall_seconds);
  out.set("strategies", std::move(strategies));
  out.set("points", std::move(points));
  return out;
}

void write_bench_json(const std::string& name,
                      const util::JsonValue& payload) {
  const std::string path = "BENCH_" + name + ".json";
  try {
    payload.write_file(path);
    std::printf("wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
}

}  // namespace idlered::bench
