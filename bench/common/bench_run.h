// BenchRun — the one envelope every bench binary goes through.
//
// Construction parses the observability opt-ins (`--trace[=path]` on the
// command line, or the IDLERED_TRACE environment variable) and, when
// requested, starts the global obs recorder with a "meta" event naming the
// bench. Destruction writes the schema-versioned BENCH_<name>.json —
// run metadata, whatever payloads the bench staged, and the obs block
// (metrics snapshot, span aggregates, trace stats) — then flushes the
// JSON-lines trace file. Payload emission is centralized here so the
// schema cannot drift bench-by-bench.
//
// Schema (version 2):
//   {
//     "schema_version": 2,
//     "bench": "<name>",
//     ...staged payloads ("report", bench-specific keys)...,
//     "obs": {
//       "traced": bool,
//       "trace_path": "...", "events": N, "spans": {...},   (traced only)
//       "metrics": { "<metric>": {...}, ... }
//     }
//   }
//
// tools/obs_report.py renders and validates both artifacts.
#pragma once

#include <memory>
#include <string>

#include "engine/eval_session.h"
#include "obs/export.h"
#include "util/json.h"

namespace idlered::bench {

class BenchRun {
 public:
  /// Bump when the BENCH_<name>.json layout changes shape.
  static constexpr int kSchemaVersion = 2;

  /// `name` is the artifact stem (BENCH_<name>.json / TRACE_<name>.jsonl).
  /// argv is scanned for --trace / --trace=<path>; the IDLERED_TRACE
  /// environment variable ("1"/"on" for the default path, anything else as
  /// the path itself) is the no-flag fallback for wrapper scripts.
  /// --export / --export=<stem> (env IDLERED_EXPORT) additionally stands
  /// up an obs::Exporter writing METRICS_<name>.prom / METRICS_<name>.json
  /// (or <stem>.prom / <stem>.json): flush-on-shutdown always, plus
  /// whatever periodic tick()s the bench drives through exporter().
  BenchRun(std::string name, int argc, char** argv);

  /// Writes BENCH_<name>.json and flushes the trace. Never throws — bench
  /// artifact I/O failures are reported to stderr, not turned into crashes.
  ~BenchRun();

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  bool tracing() const { return tracing_; }
  const std::string& trace_path() const { return trace_path_; }

  /// The periodic exporter, or nullptr when --export was not requested.
  /// Long-running benches call exporter()->tick(util::monotonic_seconds())
  /// from their pacing loop for live METRICS_* files.
  obs::Exporter* exporter() { return exporter_.get(); }

  /// Attach a top-level payload under `key` (overwrites on re-stage).
  void stage(const std::string& key, util::JsonValue value);

  /// Convenience: serialize an engine report under the "report" key.
  void stage_report(const engine::EvalReport& report);

 private:
  std::string name_;
  bool tracing_ = false;
  std::string trace_path_;
  util::JsonValue staged_;
  std::unique_ptr<obs::Exporter> exporter_;
};

}  // namespace idlered::bench
