// Machine-readable bench artifacts: every engine-backed bench writes a
// BENCH_<name>.json next to its table output — wall time, thread count and
// per-strategy CRs — seeding the perf trajectory across PRs.
#pragma once

#include <string>

#include "engine/eval_session.h"
#include "util/json.h"

namespace idlered::bench {

/// Serialize an EvalReport: run metadata, then one entry per sweep point
/// with the axis value, break-even and per-strategy mean/worst CRs.
util::JsonValue report_to_json(const engine::EvalReport& report);

/// Write `payload` to BENCH_<name>.json in the working directory and print
/// a one-line confirmation. I/O failures are reported to stderr but never
/// kill a bench. Benches do not call this directly — the BenchRun envelope
/// (common/bench_run.h) owns artifact emission so the schema stays uniform.
void write_bench_json(const std::string& name, const util::JsonValue& payload);

}  // namespace idlered::bench
