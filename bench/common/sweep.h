// Shared machinery for the Figure 5/6 benchmarks: per-mean-stop-length
// fleets, per-strategy worst-case (max-over-vehicles) CR, and the table
// printer both figures share.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fleet_eval.h"
#include "traces/area_profiles.h"

namespace idlered::bench {

struct SweepPoint {
  double mean_stop_s = 0.0;
  /// Worst-case (max over the simulated fleet) CR per strategy, in
  /// standard_strategy_set() order.
  std::vector<double> worst_cr;
  /// The strategy COA selected from the fleet-level statistics.
  std::string coa_choice;
};

struct SweepConfig {
  double break_even = 28.0;
  int vehicles_per_point = 150;
  std::uint64_t seed = 20140601;  // DAC'14 conference date
  std::vector<double> mean_stops_s;  ///< sweep grid
};

/// Default grid: mean stop lengths from well below to well above B.
SweepConfig default_sweep(double break_even);

/// Simulate a fleet per mean-stop-length point (Chicago-shaped law rescaled,
/// the paper's Figures 5-6 methodology) and record worst-case CRs.
std::vector<SweepPoint> run_traffic_sweep(const SweepConfig& config);

/// Render the sweep as the figure's series table and print headline
/// observations (who wins where, crossover locations).
void print_sweep(const std::vector<SweepPoint>& points,
                 const std::vector<std::string>& strategy_names,
                 double break_even);

}  // namespace idlered::bench
