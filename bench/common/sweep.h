// Shared machinery for the Figure 5/6 benchmarks: per-mean-stop-length
// fleets, per-strategy worst-case (max-over-vehicles) CR, and the table
// printer both figures share.
//
// Evaluation runs through the parallel engine (engine::EvalSession): one
// plan point per mean-stop-length, the standard strategy lineup, expected
// mode. Fleet *generation* stays serial and seeded exactly as before, so
// the workloads are bit-identical to the pre-engine benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "costmodel/multislope.h"
#include "engine/eval_session.h"
#include "lp/arena.h"
#include "sim/fleet_eval.h"
#include "traces/area_profiles.h"

namespace idlered::bench {

struct SweepPoint {
  double mean_stop_s = 0.0;
  /// Worst-case (max over the simulated fleet) CR per strategy, in
  /// standard_strategy_set() order.
  std::vector<double> worst_cr;
  /// The strategy COA selected from the fleet-level statistics.
  std::string coa_choice;
};

struct SweepConfig {
  double break_even = 28.0;
  int vehicles_per_point = 150;
  std::uint64_t seed = 20140601;  // DAC'14 conference date
  std::vector<double> mean_stops_s;  ///< sweep grid
  int threads = 0;  ///< engine pool width; 0 = hardware concurrency
};

/// Default grid: mean stop lengths from well below to well above B.
SweepConfig default_sweep(double break_even);

/// One sweep point's workload: the Chicago-shaped law rescaled to a target
/// mean (the paper's Figures 5-6 methodology).
struct PointFleet {
  double mean_stop_s = 0.0;
  std::shared_ptr<const sim::Fleet> fleet;
};

/// Generate the per-point fleets. Deterministic in config.seed and
/// independent of config.threads — shared by the engine path and the
/// serial reference path.
std::vector<PointFleet> build_sweep_fleets(const SweepConfig& config);

/// Assemble the engine plan for the sweep (expected mode, standard
/// strategy lineup, one plan point per fleet).
engine::EvalPlan make_sweep_plan(const SweepConfig& config,
                                 const std::vector<PointFleet>& fleets);

/// Extract the figure's series from an engine report and annotate each
/// point with COA's fleet-level strategy choice.
std::vector<SweepPoint> sweep_points_from_report(
    const SweepConfig& config, const engine::EvalReport& report);

struct SweepRun {
  std::vector<SweepPoint> points;
  engine::EvalReport report;
};

/// Generate fleets and evaluate them on the engine — the whole sweep.
SweepRun run_traffic_sweep(const SweepConfig& config);

/// Render the sweep as the figure's series table and print headline
/// observations (who wins where, crossover locations).
void print_sweep(const std::vector<SweepPoint>& points,
                 const std::vector<std::string>& strategy_names,
                 double break_even);

/// One batched COA LP pass over a fleet: per-vehicle (mu, q) statistics
/// out of the engine cache, one eq. (32)-(33) vertex LP per vehicle via
/// `core::solve_constrained_lp_batch` (zero per-solve heap traffic), each
/// selection cross-checked against the closed-form `choose_strategy()`.
struct CoaBatchSummary {
  std::size_t solves = 0;
  double seconds = 0.0;          ///< batch wall time (stats + LP solves)
  std::size_t mismatches = 0;    ///< LP vertex != closed-form choice
  std::size_t strategy_counts[4] = {0, 0, 0, 0};  ///< per core::Strategy

  double solves_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(solves) / seconds : 0.0;
  }
};

CoaBatchSummary coa_lp_batch(const sim::Fleet& fleet, double break_even,
                             lp::WorkspacePool& pool);

/// Batched multislope generalized-COA LP pass: one eq. (32)-(33) vertex LP
/// per (vehicle, transition) cell, each at its transition's own break-even
/// t_i, staged vehicle-major and solved in ONE per-entry
/// `core::solve_constrained_lp_batch` pass through the pool. Every
/// selection is cross-checked against the closed-form `choose_strategy()`
/// at the same (stats, t_i); on SlopeProfile::two_slope(B) the pass is
/// exactly coa_lp_batch's differential (one transition at t_0 = B), so
/// `mismatches == 0` is the "LP COA == closed-form two-slope COA" gate.
struct MultislopeCoaBatchSummary {
  std::size_t vehicles = 0;
  std::size_t transitions = 0;   ///< per vehicle (profile.num_transitions())
  std::size_t solves = 0;        ///< vehicles * transitions
  double seconds = 0.0;          ///< batch wall time (stats + LP solves)
  std::size_t mismatches = 0;    ///< LP vertex != closed-form choice
  std::size_t strategy_counts[4] = {0, 0, 0, 0};  ///< per core::Strategy

  double solves_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(solves) / seconds : 0.0;
  }
};

MultislopeCoaBatchSummary multislope_coa_lp_batch(
    const sim::Fleet& fleet, const costmodel::SlopeProfile& profile,
    lp::WorkspacePool& pool);

}  // namespace idlered::bench
