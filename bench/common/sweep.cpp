#include "common/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/analytic.h"
#include "core/solver_lp.h"
#include "dist/distribution.h"
#include "engine/strategy.h"
#include "engine/vehicle_cache.h"
#include "traces/fleet_generator.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table.h"

namespace idlered::bench {

SweepConfig default_sweep(double break_even) {
  SweepConfig c;
  c.break_even = break_even;
  // From ~B/6 to ~6B: covers the DET regime, the crossover band, and the
  // TOI regime of Figures 5-6.
  c.mean_stops_s = util::logspace(break_even / 6.0, break_even * 6.0, 17);
  return c;
}

std::vector<PointFleet> build_sweep_fleets(const SweepConfig& config) {
  const auto profile = traces::chicago();
  util::Rng rng(config.seed);

  std::vector<PointFleet> fleets;
  fleets.reserve(config.mean_stops_s.size());
  for (double mean_stop : config.mean_stops_s) {
    // Same fork schedule as the pre-engine serial loop, so the generated
    // workloads are bit-identical across the refactor.
    util::Rng point_rng = rng.fork(static_cast<std::uint64_t>(
        mean_stop * 1000.0));
    auto fleet = std::make_shared<sim::Fleet>(traces::generate_scaled_fleet(
        profile, mean_stop, config.vehicles_per_point, point_rng));
    fleets.push_back(PointFleet{mean_stop, std::move(fleet)});
  }
  return fleets;
}

engine::EvalPlan make_sweep_plan(const SweepConfig& config,
                                 const std::vector<PointFleet>& fleets) {
  engine::EvalPlan plan;
  plan.strategies = engine::standard_strategy_set();
  plan.mode = engine::EvalMode::kExpected;
  plan.threads = config.threads;
  plan.points.reserve(fleets.size());
  for (const PointFleet& pf : fleets) {
    plan.points.push_back(
        engine::PlanPoint{pf.mean_stop_s, config.break_even, pf.fleet});
  }
  return plan;
}

std::vector<SweepPoint> sweep_points_from_report(
    const SweepConfig& config, const engine::EvalReport& report) {
  const auto profile = traces::chicago();
  std::vector<SweepPoint> points;
  points.reserve(report.points.size());
  for (const auto& rp : report.points) {
    SweepPoint p;
    p.mean_stop_s = rp.axis;
    p.worst_cr = rp.comparison.worst_cr();

    const auto law =
        traces::scaled_stop_distribution(profile, p.mean_stop_s);
    const auto stats =
        dist::ShortStopStats::from_distribution(*law, config.break_even);
    p.coa_choice =
        core::to_string(core::choose_strategy(stats, config.break_even)
                            .strategy);
    points.push_back(std::move(p));
  }
  return points;
}

SweepRun run_traffic_sweep(const SweepConfig& config) {
  const auto fleets = build_sweep_fleets(config);
  engine::EvalSession session(make_sweep_plan(config, fleets));
  SweepRun run{{}, session.run()};
  run.points = sweep_points_from_report(config, run.report);
  return run;
}

void print_sweep(const std::vector<SweepPoint>& points,
                 const std::vector<std::string>& strategy_names,
                 double break_even) {
  std::vector<std::string> header{"mean_stop_s"};
  header.insert(header.end(), strategy_names.begin(), strategy_names.end());
  header.push_back("COA picks");
  util::Table table(std::move(header));

  for (const auto& p : points) {
    std::vector<std::string> row{util::fmt(p.mean_stop_s, 1)};
    for (double cr : p.worst_cr) row.push_back(util::fmt(cr, 3));
    row.push_back(p.coa_choice);
    table.add_row(std::move(row));
  }
  std::printf("%s", table.str().c_str());

  // Headline shape checks the paper reports: DET wins short means, TOI wins
  // long means, COA is the lower envelope throughout.
  const auto index_of = [&](const std::string& name) {
    return static_cast<std::size_t>(
        std::find(strategy_names.begin(), strategy_names.end(), name) -
        strategy_names.begin());
  };
  const std::size_t i_coa = index_of("COA");
  const std::size_t i_det = index_of("DET");
  const std::size_t i_toi = index_of("TOI");

  // COA provably dominates TOI / DET / N-Rand (and NEV in practice) on
  // every vehicle; MOM-Rand is outside its candidate set, so on easy
  // low-mean fleets its realized worst can occasionally dip below COA's
  // even though its worst-case guarantee is weaker. Report both facts.
  bool coa_is_envelope = true;
  int momrand_dips = 0;
  for (const auto& p : points) {
    for (std::size_t s = 0; s < p.worst_cr.size(); ++s) {
      if (s == i_coa) continue;
      if (p.worst_cr[i_coa] > p.worst_cr[s] + 1e-6) {
        if (strategy_names[s] == "MOM-Rand") {
          ++momrand_dips;
        } else {
          coa_is_envelope = false;
        }
      }
    }
  }
  std::printf("\nCOA is the lower envelope of TOI/NEV/DET/N-Rand: %s\n",
              coa_is_envelope ? "YES" : "NO");
  if (momrand_dips > 0) {
    std::printf("MOM-Rand's realized worst dipped below COA's at %d "
                "point(s) — its guarantee (>= e/(e-1) once any vehicle's "
                "mean exceeds 2(e-2)/(e-1) B) is still weaker.\n",
                momrand_dips);
  }
  std::printf("DET worst CR at shortest mean (%0.1f s): %.3f  |  at longest"
              " (%0.1f s): %.3f\n",
              points.front().mean_stop_s, points.front().worst_cr[i_det],
              points.back().mean_stop_s, points.back().worst_cr[i_det]);
  std::printf("TOI worst CR at shortest mean: %.3f  |  at longest: %.3f\n",
              points.front().worst_cr[i_toi], points.back().worst_cr[i_toi]);
  std::printf("Paper shape: DET good for short stops, TOI good for long"
              " stops, COA (B=%.0f) robust everywhere.\n",
              break_even);
}

CoaBatchSummary coa_lp_batch(const sim::Fleet& fleet, double break_even,
                             lp::WorkspacePool& pool) {
  const engine::FleetCache cache(fleet);

  CoaBatchSummary summary;
  summary.solves = cache.size();

  std::vector<dist::ShortStopStats> stats;
  stats.reserve(cache.size());
  std::vector<core::LpStrategySolution> out(cache.size());

  // Time what the batched path replaces end-to-end: the per-vehicle stats
  // lookups plus the vertex LPs. The cache build (sort + prefix sums) is
  // shared with the evaluation engine, so it stays outside the clock.
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cache.size(); ++i)
    stats.push_back(cache.vehicle(i).stats_for(break_even));
  core::solve_constrained_lp_batch(stats, break_even, pool, out);
  summary.seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();

  for (std::size_t i = 0; i < cache.size(); ++i) {
    summary.strategy_counts[static_cast<std::size_t>(out[i].strategy)]++;
    const core::Strategy closed_form =
        core::choose_strategy(stats[i], break_even).strategy;
    if (out[i].strategy != closed_form) summary.mismatches++;
  }
  return summary;
}

MultislopeCoaBatchSummary multislope_coa_lp_batch(
    const sim::Fleet& fleet, const costmodel::SlopeProfile& profile,
    lp::WorkspacePool& pool) {
  const engine::FleetCache cache(fleet);

  MultislopeCoaBatchSummary summary;
  summary.vehicles = cache.size();
  summary.transitions = profile.num_transitions();
  summary.solves = summary.vehicles * summary.transitions;

  std::vector<core::LpBatchProblem> problems;
  problems.reserve(summary.solves);
  std::vector<core::LpStrategySolution> out(summary.solves);

  // Same clock scope as coa_lp_batch: the per-(vehicle, transition) stats
  // lookups plus the single batched LP pass; the fleet cache build stays
  // outside (shared with the evaluation engine).
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t v = 0; v < cache.size(); ++v) {
    for (double t : profile.breakpoints())
      problems.push_back(
          core::LpBatchProblem{cache.vehicle(v).stats_for(t), t});
  }
  core::solve_constrained_lp_batch(problems, pool, out);
  summary.seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();

  for (std::size_t i = 0; i < problems.size(); ++i) {
    summary.strategy_counts[static_cast<std::size_t>(out[i].strategy)]++;
    const core::Strategy closed_form =
        core::choose_strategy(problems[i].stats, problems[i].break_even)
            .strategy;
    if (out[i].strategy != closed_form) summary.mismatches++;
  }
  return summary;
}

}  // namespace idlered::bench
