#include "common/bench_run.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string_view>
#include <utility>

#include "common/bench_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace idlered::bench {

namespace {

/// Resolve the trace request to a sink path; empty string means "off".
std::string trace_request(const std::string& name, int argc, char** argv) {
  bool on = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == nullptr) continue;
    const std::string_view arg(argv[i]);
    if (arg == "--trace") {
      on = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      on = true;
      path = std::string(arg.substr(8));
    }
  }
  if (!on) {
    const char* env = std::getenv("IDLERED_TRACE");
    if (env != nullptr && *env != '\0') {
      on = true;
      const std::string_view v(env);
      if (v != "1" && v != "on") path = std::string(v);
    }
  }
  if (!on) return {};
  return path.empty() ? "TRACE_" + name + ".jsonl" : path;
}

/// Resolve the export request to a file stem; empty string means "off".
std::string export_request(const std::string& name, int argc, char** argv) {
  bool on = false;
  std::string stem;
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == nullptr) continue;
    const std::string_view arg(argv[i]);
    if (arg == "--export") {
      on = true;
    } else if (arg.rfind("--export=", 0) == 0) {
      on = true;
      stem = std::string(arg.substr(9));
    }
  }
  if (!on) {
    const char* env = std::getenv("IDLERED_EXPORT");
    if (env != nullptr && *env != '\0') {
      on = true;
      const std::string_view v(env);
      if (v != "1" && v != "on") stem = std::string(v);
    }
  }
  if (!on) return {};
  return stem.empty() ? "METRICS_" + name : stem;
}

}  // namespace

BenchRun::BenchRun(std::string name, int argc, char** argv)
    : name_(std::move(name)), staged_(util::JsonValue::object()) {
  // Envelope fields first: JsonValue objects are insertion-ordered, so
  // seeding them here keeps them at the top of the artifact.
  staged_.set("schema_version", kSchemaVersion);
  staged_.set("bench", name_);

  if (const std::string stem = export_request(name_, argc, argv);
      !stem.empty()) {
    obs::ExporterConfig config;
    config.prometheus_path = stem + ".prom";
    config.json_path = stem + ".json";
    exporter_ = std::make_unique<obs::Exporter>(
        obs::MetricsRegistry::global(), std::move(config));
  }

  trace_path_ = trace_request(name_, argc, argv);
  tracing_ = !trace_path_.empty();
  if (tracing_) {
    obs::recorder().start(trace_path_);
    util::JsonValue meta = util::JsonValue::object();
    meta.set("type", "meta");
    meta.set("bench", name_);
    meta.set("schema_version", kSchemaVersion);
    obs::recorder().emit(std::move(meta));
  }
}

void BenchRun::stage(const std::string& key, util::JsonValue value) {
  staged_.set(key, std::move(value));
}

void BenchRun::stage_report(const engine::EvalReport& report) {
  staged_.set("report", report_to_json(report));
}

BenchRun::~BenchRun() {
  try {
    util::JsonValue obs_block = util::JsonValue::object();
    obs_block.set("traced", tracing_);
    if (tracing_) {
      obs_block.set("trace_path", trace_path_);
      obs_block.set("events", obs::recorder().event_count());
      util::JsonValue spans = util::JsonValue::object();
      for (const auto& [span_name, stat] : obs::recorder().span_stats()) {
        util::JsonValue s = util::JsonValue::object();
        s.set("count", static_cast<std::size_t>(stat.count));
        s.set("total_s", stat.total);
        s.set("self_s", stat.self);
        spans.set(span_name, std::move(s));
      }
      obs_block.set("spans", std::move(spans));
    }
    obs_block.set("metrics",
                  obs::MetricsRegistry::global().snapshot().to_json());
    staged_.set("obs", std::move(obs_block));
    write_bench_json(name_, staged_);

    if (tracing_) {
      obs::recorder().stop();
      const std::size_t n = obs::recorder().flush();
      std::printf("wrote %s (%zu events)\n", trace_path_.c_str(), n);
    }
    if (exporter_) {
      exporter_->flush();
      std::printf("wrote %s and %s (%zu export rounds)\n",
                  exporter_->config().prometheus_path.c_str(),
                  exporter_->config().json_path.c_str(),
                  exporter_->writes());
      exporter_.reset();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: bench envelope for %s: %s\n",
                 name_.c_str(), e.what());
  }
}

}  // namespace idlered::bench
