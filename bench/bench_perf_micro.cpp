// Performance microbenchmarks, including ablation A3: the LP-backed
// constrained-ski-rental solver vs the closed-form vertex enumeration. A
// stop-start controller runs on embedded hardware, so the per-stop decision
// path (statistics update + strategy selection + threshold draw) must be
// cheap; these benches pin down its cost.
//
// Also the micro-scale view of the evaluator kernels: per-stop cost of the
// scalar loop vs the SIMD batch kernels (sim/batch_kernels.h) in expected
// and sampled mode, on a single large synthetic trace. The fleet-scale view
// lives in bench_engine_scaling.
//
// Self-timed harness on the BenchRun envelope (schema-v2
// BENCH_perf_micro.json): each micro is calibrated to run for at least
// kMinSeconds of wall time, then reported as ns/op. This replaced the old
// google-benchmark binary — the last bench outside the envelope — so every
// bench artifact now validates under tools/obs_report.py.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_run.h"
#include "core/estimator.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "core/solver_lp.h"
#include "sim/evaluator.h"
#include "sim/fleet_eval.h"
#include "sim/stop_batch.h"
#include "traces/area_profiles.h"
#include "traces/fleet_generator.h"
#include "traffic/intersection.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;
constexpr double kMinSeconds = 0.1;  // per-micro measured wall time floor

// Keep the compiler from eliding a benchmarked computation (the classic
// empty-asm sink, same trick google-benchmark's DoNotOptimize uses).
template <typename T>
inline void keep(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct Micro {
  std::string name;
  double ns_per_op = 0.0;
  std::uint64_t iterations = 0;
  double items_per_op = 1.0;  ///< for throughput rows (stops, vehicles, ...)
};

/// Run `body` in growing batches until one timed batch spans kMinSeconds,
/// then report that batch. Deterministic workloads only — the calibration
/// loop replays `body`, so bodies must not accumulate visible state across
/// iterations (each owns its own RNG / estimator reset or tolerates replay).
template <typename F>
Micro time_micro(std::string name, F&& body, double items_per_op = 1.0) {
  using clock = std::chrono::steady_clock;
  std::uint64_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) body();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= kMinSeconds || iters >= (1ull << 30))
      return {std::move(name), s * 1e9 / static_cast<double>(iters), iters,
              items_per_op};
    const double grow =
        s > 0.0 ? (kMinSeconds * 1.4 / s) : 100.0;
    iters = std::max<std::uint64_t>(
        iters + 1,
        static_cast<std::uint64_t>(
            static_cast<double>(iters) * std::min(grow, 100.0)));
  }
}

dist::ShortStopStats stats_point(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

/// Synthetic single-vehicle trace for the kernel micros: stop lengths
/// straddling B so every policy branch is exercised.
std::vector<double> synthetic_stops(std::size_t n) {
  util::Rng rng(7);
  std::vector<double> stops(n);
  for (double& y : stops) y = rng.uniform(0.0, 4.0 * kB);
  return stops;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("perf_micro", argc, argv);
  std::printf("%s", util::banner("Performance microbenchmarks").c_str());

  std::vector<Micro> micros;

  // ------------------------- A3: closed-form vertex enumeration vs LP solver
  {
    const auto s = stats_point(0.2, 0.3);
    micros.push_back(time_micro("choose_strategy/closed_form", [&] {
      keep(core::choose_strategy(s, kB));
    }));
    micros.push_back(time_micro("choose_strategy/lp", [&] {
      keep(core::solve_constrained_lp(s, kB));
    }));
  }

  // --------------------------------------------------- per-stop decision path
  {
    core::DecayingStatsEstimator est(kB, 0.99);
    double y = 10.0;
    micros.push_back(time_micro("estimator/observe", [&] {
      est.observe(y);
      y = y < 100.0 ? y + 0.37 : 1.0;
      keep(est);
    }));
  }
  {
    const auto s = stats_point(0.15, 0.35);
    micros.push_back(time_micro("policy/proposed_construction", [&] {
      core::ProposedPolicy p(kB, s);
      keep(p);
    }));
  }
  {
    core::NRandPolicy p(kB);
    util::Rng rng(2);
    micros.push_back(time_micro("policy/nrand_sample_threshold", [&] {
      keep(p.sample_threshold(rng));
    }));
  }
  {
    // Bisection-based inverse CDF: the expensive sampling path.
    core::MomRandPolicy p(kB, 0.3 * kB);
    util::Rng rng(3);
    micros.push_back(time_micro("policy/momrand_sample_threshold", [&] {
      keep(p.sample_threshold(rng));
    }));
  }
  {
    core::NRandPolicy p(kB);
    double y = 0.5;
    micros.push_back(time_micro("policy/nrand_expected_cost", [&] {
      keep(p.expected_cost(y));
      y = y < 60.0 ? y + 0.1 : 0.5;
    }));
  }

  // ------------------------------------------- evaluator kernels, per stop
  // One large trace, COA policy (the vertex-dispatch worst case for the
  // batch path) and N-Rand (the pure closed-form case).
  const std::vector<double> stops = synthetic_stops(1 << 16);
  const sim::StopBatch batch(stops);
  const double n_stops = static_cast<double>(stops.size());
  const core::ProposedPolicy coa(kB, stats_point(0.2, 0.3));
  const core::NRandPolicy nrand(kB);
  double expected_scalar_ns = 0.0, expected_batch_ns = 0.0;
  double sampled_scalar_ns = 0.0, sampled_batch_ns = 0.0;
  {
    sim::EvalOptions scalar;
    micros.push_back(time_micro("evaluate/expected_scalar_coa", [&] {
      keep(sim::evaluate(coa, stops, scalar));
    }, n_stops));
    expected_scalar_ns = micros.back().ns_per_op;
    micros.push_back(time_micro("evaluate/expected_batch_coa", [&] {
      keep(sim::evaluate(coa, batch, scalar));
    }, n_stops));
    expected_batch_ns = micros.back().ns_per_op;
    micros.push_back(time_micro("evaluate/expected_scalar_nrand", [&] {
      keep(sim::evaluate(nrand, stops, scalar));
    }, n_stops));
    micros.push_back(time_micro("evaluate/expected_batch_nrand", [&] {
      keep(sim::evaluate(nrand, batch, scalar));
    }, n_stops));
  }
  {
    util::Rng rng(11);
    sim::EvalOptions sampled;
    sampled.mode = sim::EvalMode::kSampled;
    sampled.rng = &rng;
    micros.push_back(time_micro("evaluate/sampled_scalar_nrand", [&] {
      keep(sim::evaluate(nrand, stops, sampled));
    }, n_stops));
    sampled_scalar_ns = micros.back().ns_per_op;
    micros.push_back(time_micro("evaluate/sampled_batch_nrand", [&] {
      keep(sim::evaluate(nrand, batch, sampled));
    }, n_stops));
    sampled_batch_ns = micros.back().ns_per_op;
  }

  // --------------------------------------------------------- bulk throughput
  for (int vehicles : {8, 32, 128}) {
    auto profile = traces::california();
    profile.num_vehicles_driving = vehicles;
    util::Rng rng(4);
    const auto fleet = traces::generate_area_fleet(profile, rng);
    const auto specs = sim::standard_strategy_set();
    micros.push_back(time_micro(
        "fleet/compare_strategies/" + std::to_string(vehicles), [&] {
          keep(sim::compare_strategies(fleet, kB, specs));
        }, static_cast<double>(vehicles)));
  }
  {
    const auto profile = traces::chicago();
    util::Rng rng(5);
    int i = 0;
    micros.push_back(time_micro("fleet/generate_vehicle", [&] {
      keep(traces::generate_vehicle(profile, ++i, rng));
    }));
  }
  for (int horizon : {3600, 86400}) {
    traffic::IntersectionConfig cfg;
    cfg.arrival_rate_per_s = 0.15;
    traffic::IntersectionSimulator sim(cfg);
    util::Rng rng(6);
    micros.push_back(time_micro(
        "traffic/intersection/" + std::to_string(horizon), [&] {
          keep(sim.simulate(static_cast<double>(horizon), rng));
        }, static_cast<double>(horizon)));
  }

  util::Table table({"micro", "ns/op", "iterations", "ns/item"});
  util::JsonValue micros_json = util::JsonValue::array();
  for (const Micro& m : micros) {
    table.add_row({m.name, util::fmt(m.ns_per_op, 1),
                   std::to_string(m.iterations),
                   m.items_per_op > 1.0
                       ? util::fmt(m.ns_per_op / m.items_per_op, 2) : "-"});
    util::JsonValue j = util::JsonValue::object();
    j.set("name", m.name);
    j.set("ns_per_op", m.ns_per_op);
    j.set("iterations", static_cast<double>(m.iterations));
    j.set("items_per_op", m.items_per_op);
    micros_json.push_back(std::move(j));
  }
  std::printf("%s\n", table.str().c_str());

  const double expected_speedup =
      expected_batch_ns > 0.0 ? expected_scalar_ns / expected_batch_ns : 0.0;
  const double sampled_speedup =
      sampled_batch_ns > 0.0 ? sampled_scalar_ns / sampled_batch_ns : 0.0;
  std::printf("batch kernel speedup over scalar (COA expected): %.2fx  |  "
              "sampled (N-Rand, draws stay serial): %.2fx\n",
              expected_speedup, sampled_speedup);

  util::JsonValue payload = util::JsonValue::object();
  payload.set("min_seconds_per_micro", kMinSeconds);
  payload.set("kernel_stops", n_stops);
  payload.set("batch_speedup_expected_coa", expected_speedup);
  payload.set("batch_speedup_sampled_nrand", sampled_speedup);
  payload.set("micros", std::move(micros_json));
  run.stage("results", std::move(payload));
  return 0;
}
