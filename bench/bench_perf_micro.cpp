// Performance microbenchmarks (google-benchmark), including ablation A3:
// the LP-backed constrained-ski-rental solver vs the closed-form vertex
// enumeration. A stop-start controller runs on embedded hardware, so the
// per-stop decision path (statistics update + strategy selection +
// threshold draw) must be cheap; these benches pin down its cost.
//
// Deliberate exception to the BenchRun envelope (common/bench_run.h):
// google-benchmark owns main() here and emits its own JSON via
// --benchmark_format=json, so this binary writes no BENCH_*.json.
#include <benchmark/benchmark.h>

#include "core/estimator.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "core/solver_lp.h"
#include "sim/fleet_eval.h"
#include "traces/fleet_generator.h"
#include "traffic/intersection.h"
#include "util/random.h"

namespace {

using namespace idlered;

constexpr double kB = 28.0;

dist::ShortStopStats stats_point(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

// --------------------------- A3: closed-form vertex enumeration vs LP solver

void BM_ChooseStrategyClosedForm(benchmark::State& state) {
  const auto s = stats_point(0.2, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::choose_strategy(s, kB));
  }
}
BENCHMARK(BM_ChooseStrategyClosedForm);

void BM_ChooseStrategyViaLp(benchmark::State& state) {
  const auto s = stats_point(0.2, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_constrained_lp(s, kB));
  }
}
BENCHMARK(BM_ChooseStrategyViaLp);

// ----------------------------------------------------- per-stop decision path

void BM_EstimatorObserve(benchmark::State& state) {
  core::DecayingStatsEstimator est(kB, 0.99);
  util::Rng rng(1);
  double y = 10.0;
  for (auto _ : state) {
    est.observe(y);
    y = y < 100.0 ? y + 0.37 : 1.0;
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_EstimatorObserve);

void BM_ProposedPolicyConstruction(benchmark::State& state) {
  const auto s = stats_point(0.15, 0.35);
  for (auto _ : state) {
    core::ProposedPolicy p(kB, s);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ProposedPolicyConstruction);

void BM_NRandSampleThreshold(benchmark::State& state) {
  core::NRandPolicy p(kB);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.sample_threshold(rng));
  }
}
BENCHMARK(BM_NRandSampleThreshold);

void BM_MomRandSampleThreshold(benchmark::State& state) {
  // Bisection-based inverse CDF: the expensive sampling path.
  core::MomRandPolicy p(kB, 0.3 * kB);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.sample_threshold(rng));
  }
}
BENCHMARK(BM_MomRandSampleThreshold);

void BM_NRandExpectedCost(benchmark::State& state) {
  core::NRandPolicy p(kB);
  double y = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.expected_cost(y));
    y = y < 60.0 ? y + 0.1 : 0.5;
  }
}
BENCHMARK(BM_NRandExpectedCost);

// ----------------------------------------------------------- bulk throughput

void BM_FleetComparison(benchmark::State& state) {
  auto profile = traces::california();
  profile.num_vehicles_driving = static_cast<int>(state.range(0));
  util::Rng rng(4);
  const auto fleet = traces::generate_area_fleet(profile, rng);
  const auto specs = sim::standard_strategy_set();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::compare_strategies(fleet, kB, specs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetComparison)->Arg(8)->Arg(32)->Arg(128);

void BM_VehicleGeneration(benchmark::State& state) {
  const auto profile = traces::chicago();
  util::Rng rng(5);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(traces::generate_vehicle(profile, ++i, rng));
  }
}
BENCHMARK(BM_VehicleGeneration);

void BM_IntersectionSimulation(benchmark::State& state) {
  traffic::IntersectionConfig cfg;
  cfg.arrival_rate_per_s = 0.15;
  traffic::IntersectionSimulator sim(cfg);
  util::Rng rng(6);
  const double horizon = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(horizon, rng));
  }
}
BENCHMARK(BM_IntersectionSimulation)->Arg(3600)->Arg(86400);

}  // namespace
