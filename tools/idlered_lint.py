#!/usr/bin/env python3
"""idlered_lint: repo-specific invariant linter.

Encodes rules that generic static analyzers cannot know about this codebase
(see DESIGN.md §8 for the full analysis stack):

  determinism       No ambient entropy or wall-clock reads in src/ outside
                    src/util/: std::random_device, time(), rand()/srand(),
                    std::chrono::*::now(). The evaluation engine guarantees
                    bit-identical reports for any thread count; one stray
                    clock or entropy read breaks that silently. util/ holds
                    the audited entry points (util::Rng, monotonic_seconds).

  deprecated-eval   No calls to the deprecated evaluate_expected /
                    evaluate_sampled / offline_cost_total wrappers outside
                    their definitions (src/sim/evaluator.{h,cpp}). New code
                    goes through sim::evaluate(policy, stops, EvalOptions).

  deprecated-lp     No `lp::Problem` (the heap-per-solve value-type LP path)
                    in src/ outside its home (src/lp/simplex.{h,cpp}, where
                    the compatibility wrapper lives). Library code solves
                    through the arena workspace API of src/lp/arena.h
                    (lp::Workspace + lp::solve(Workspace&, ProblemView) or
                    lp::solve_batch), which is allocation-free and
                    bit-identical. Tests/benches/tools/examples may use the
                    value type freely — differential coverage of the two
                    paths depends on it.

  float-compare     No raw == / != against a floating-point literal in src/
                    without an approved-comparison annotation. Exact
                    floating comparison is occasionally correct (sentinel
                    zeros, exact branch cuts) but must be declared, not
                    accidental: annotate with `lint: allow(float-compare):
                    <reason>`.

  thread-outside-engine
                    No std::thread / std::jthread / std::async construction
                    in src/ outside src/engine/. All parallelism flows
                    through the engine's work-stealing pool so determinism
                    and shutdown stay centralized.

  header-hygiene    Every header under src/ starts with #pragma once (or a
                    classic include guard) and contains no `using namespace`
                    at any scope.

  io-quarantine     No raw stdio/iostream writes (printf/fprintf/puts/fputs,
                    std::cout/cerr/clog) in src/ outside src/obs/ and
                    src/util/. Library code reports through the obs layer
                    (metrics + structured events) or returns values; ad-hoc
                    prints bypass both and end up interleaved across the
                    thread pool. Benches, examples, tools and tests print
                    freely.

Suppression: append `// lint: allow(<rule>): <reason>` on the offending
line, or place it alone on the line directly above. The reason is
mandatory — bare allows are themselves a finding.

Usage:
  tools/idlered_lint.py              lint the repository (src/, examples/,
                                     bench/, tools/, tests/ as scoped above)
  tools/idlered_lint.py --self-test  run against tests/lint/ fixtures
  tools/idlered_lint.py FILE...      lint specific files (paths relative to
                                     the repo root determine rule scope)

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

SCAN_DIRS = ("src", "examples", "bench", "tools", "tests")

ALLOW_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)(:\s*\S.*)?")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+|\d+\.\d*[eE][-+]?\d+)[fFlL]?"

RULES = {}


@dataclasses.dataclass
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class SourceFile:
    """A parsed C++ file: raw lines, comment/string-stripped lines, and the
    per-line set of `lint: allow(rule)` annotations (gathered from the raw
    text before stripping, honoring same-line and previous-line placement).
    """

    path: str
    raw_lines: list[str]
    code_lines: list[str]
    allows: list[dict[str, bool]]  # line index -> {rule: has_reason}

    def allowed(self, idx: int, rule: str) -> bool:
        return rule in self.allows[idx]


def strip_comments_and_strings(text: str) -> str:
    """Replace comment and string-literal contents with spaces, preserving
    line structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def parse_source(path: str, text: str) -> SourceFile:
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    # Pad in case stripping dropped a trailing newline discrepancy.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")

    allows: list[dict[str, bool]] = [dict() for _ in raw_lines]
    for idx, raw in enumerate(raw_lines):
        for m in ALLOW_RE.finditer(raw):
            rule, reason = m.group(1), m.group(2)
            has_reason = bool(reason)
            allows[idx][rule] = has_reason
            # An allow in a comment-only line covers the next code line
            # (skipping the rest of the comment block it sits in).
            if raw.lstrip().startswith(("//", "*", "/*")):
                j = idx + 1
                while j < len(raw_lines) and not code_lines[j].strip():
                    allows[j][rule] = has_reason
                    j += 1
                if j < len(raw_lines):
                    allows[j][rule] = has_reason
    return SourceFile(path, raw_lines, code_lines, allows)


def rule(name):
    def deco(fn):
        RULES[name] = fn
        return fn

    return deco


def in_dir(path: str, prefix: str) -> bool:
    return path.startswith(prefix + "/")


def scan_pattern(src: SourceFile, rule_name: str, pattern: re.Pattern,
                 message: str) -> list[Finding]:
    findings = []
    for idx, line in enumerate(src.code_lines):
        if pattern.search(line) and not src.allowed(idx, rule_name):
            findings.append(Finding(src.path, idx + 1, rule_name, message))
    return findings


DETERMINISM_RE = re.compile(
    r"std::random_device"
    r"|\b(?:std::)?s?rand\s*\("
    r"|\b(?:std::)?time\s*\("
    r"|\bchrono\b[^;]*::now\s*\("
    r"|\b(?:steady_clock|system_clock|high_resolution_clock)::now\s*\("
)


@rule("determinism")
def rule_determinism(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src") or in_dir(src.path, "src/util"):
        return []
    return scan_pattern(
        src, "determinism", DETERMINISM_RE,
        "ambient entropy/clock read in src/ outside util/ — the engine's "
        "bit-identity guarantee forbids this; use util::Rng or "
        "util::monotonic_seconds()")


DEPRECATED_EVAL_RE = re.compile(
    r"\b(?:evaluate_expected|evaluate_sampled|offline_cost_total)\s*\(")

DEPRECATED_EVAL_HOME = {"src/sim/evaluator.h", "src/sim/evaluator.cpp"}


@rule("deprecated-eval")
def rule_deprecated_eval(src: SourceFile) -> list[Finding]:
    if not any(in_dir(src.path, d) for d in SCAN_DIRS):
        return []
    if src.path in DEPRECATED_EVAL_HOME:
        return []
    return scan_pattern(
        src, "deprecated-eval", DEPRECATED_EVAL_RE,
        "call to deprecated evaluator wrapper — use "
        "sim::evaluate(policy, stops, EvalOptions)")


DEPRECATED_LP_RE = re.compile(r"\blp::Problem\b")

# Exception list for the value-type LP path: the compatibility wrapper's
# own definition. Everything else in src/ uses lp/arena.h.
DEPRECATED_LP_HOME = {"src/lp/simplex.h", "src/lp/simplex.cpp"}


@rule("deprecated-lp")
def rule_deprecated_lp(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    if src.path in DEPRECATED_LP_HOME:
        return []
    return scan_pattern(
        src, "deprecated-lp", DEPRECATED_LP_RE,
        "value-type lp::Problem in src/ — the legacy path allocates per "
        "solve; use lp::Workspace + lp::solve(workspace, ProblemView) or "
        "lp::solve_batch (src/lp/arena.h)")


FLOAT_COMPARE_RE = re.compile(
    rf"[=!]=\s*[-+]?{FLOAT_LITERAL}(?![\w.])"
    rf"|(?<![\w.]){FLOAT_LITERAL}\s*[=!]=")


@rule("float-compare")
def rule_float_compare(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    findings = []
    for idx, line in enumerate(src.code_lines):
        for m in FLOAT_COMPARE_RE.finditer(line):
            # Skip ==/!= that are part of <=, >=, ===-like tokens (none in
            # C++, but cheap to guard) and preprocessor comparisons.
            start = m.start()
            if start > 0 and line[start - 1] in "<>!=":
                continue
            if line.lstrip().startswith("#"):
                continue
            if not src.allowed(idx, "float-compare"):
                findings.append(Finding(
                    src.path, idx + 1, "float-compare",
                    "raw ==/!= against a floating-point literal — use "
                    "util::approx_equal, or annotate the exact comparison "
                    "with `lint: allow(float-compare): <reason>`"))
            break  # one finding per line is enough
    return findings


THREAD_RE = re.compile(r"\bstd::(?:jthread|thread|async)\b(?!\s*::)")


@rule("thread-outside-engine")
def rule_thread(src: SourceFile) -> list[Finding]:
    # src/engine/ owns the pool; src/serve/ is the streaming service whose
    # producer-side entry points are called from arbitrary threads, so it
    # may stand up threads of its own (its pump still runs on the engine
    # pool — the exemption is for ingestion plumbing, not for bypassing
    # parallel_for).
    if not in_dir(src.path, "src") or in_dir(src.path, "src/engine") \
            or in_dir(src.path, "src/serve"):
        return []
    return scan_pattern(
        src, "thread-outside-engine", THREAD_RE,
        "thread construction outside src/engine/ or src/serve/ — all "
        "parallelism goes through engine::ThreadPool so determinism and "
        "shutdown stay centralized")


USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")


@rule("header-hygiene")
def rule_header_hygiene(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    if not src.path.endswith((".h", ".hpp")):
        return []
    findings = []
    text = "\n".join(src.code_lines)
    if "#pragma once" not in text and not re.search(
            r"#ifndef\s+\w+\s*\n\s*#define\s+\w+", text):
        findings.append(Finding(
            src.path, 1, "header-hygiene",
            "header lacks `#pragma once` (or a classic include guard)"))
    findings.extend(scan_pattern(
        src, "header-hygiene", USING_NAMESPACE_RE,
        "`using namespace` in a header leaks into every includer"))
    return findings


IO_QUARANTINE_RE = re.compile(
    r"\b(?:std::)?(?:f?printf|puts|fputs)\s*\("
    r"|\bstd::(?:cout|cerr|clog)\b")

IO_QUARANTINE_EXEMPT = ("src/obs", "src/util")


@rule("io-quarantine")
def rule_io_quarantine(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    if any(in_dir(src.path, d) for d in IO_QUARANTINE_EXEMPT):
        return []
    return scan_pattern(
        src, "io-quarantine", IO_QUARANTINE_RE,
        "raw stdio/iostream write in src/ — library code reports through "
        "the obs layer (src/obs/) or returns values; annotate a deliberate "
        "exception with `lint: allow(io-quarantine): <reason>`")


def lint_text(path: str, text: str) -> list[Finding]:
    src = parse_source(path, text)
    findings = []
    for fn in RULES.values():
        findings.extend(fn(src))
    # A bare allow without a reason is itself a finding: suppressions must
    # say why (CONTRIBUTING.md policy).
    for idx, allows in enumerate(src.allows):
        for rule_name, has_reason in allows.items():
            if not has_reason and ALLOW_RE.search(src.raw_lines[idx]):
                findings.append(Finding(
                    path, idx + 1, "bare-allow",
                    f"`lint: allow({rule_name})` needs a reason: "
                    f"`lint: allow({rule_name}): <why>`"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def repo_files() -> list[pathlib.Path]:
    files = []
    for d in SCAN_DIRS:
        base = REPO_ROOT / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                rel = p.relative_to(REPO_ROOT).as_posix()
                if rel.startswith("tests/lint/"):
                    continue  # fixtures intentionally violate rules
                files.append(p)
    return files


def lint_paths(paths: list[pathlib.Path]) -> list[Finding]:
    findings = []
    for p in paths:
        rel = p.resolve().relative_to(REPO_ROOT).as_posix()
        findings.extend(lint_text(rel, p.read_text(encoding="utf-8")))
    return findings


FIXTURE_HEADER_RE = re.compile(
    r"lint-fixture:\s*path=(\S+)(?:\s+expect=([a-z-]+(?:,[a-z-]+)*))?")
BAD_MARKER = "LINT-BAD"


def self_test() -> int:
    """Validate the linter against tests/lint/ fixtures.

    Each fixture declares, in its first line, the repo path it pretends to
    live at (rule scoping is path-based). Lines that must trigger a finding
    carry a LINT-BAD marker comment naming the rule:
        double x; if (x == 1.0) {}  // LINT-BAD(float-compare)
    The self-test fails if any marked line produces no finding of that rule,
    or any unmarked line produces one.
    """
    fixture_dir = REPO_ROOT / "tests" / "lint"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + \
        sorted(fixture_dir.glob("*.h"))
    if not fixtures:
        print(f"idlered_lint --self-test: no fixtures in {fixture_dir}",
              file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        first_line = text.splitlines()[0] if text else ""
        header = FIXTURE_HEADER_RE.search(first_line)
        if not header:
            failures.append(f"{fixture.name}: missing `lint-fixture: "
                            f"path=...` header on line 1")
            continue
        pretend_path = header.group(1)

        expected: dict[int, set[str]] = {}
        for idx, line in enumerate(text.splitlines()):
            for m in re.finditer(rf"{BAD_MARKER}\(([a-z-]+)\)", line):
                expected.setdefault(idx + 1, set()).add(m.group(1))

        # The marker comments themselves must not confuse the rules (they
        # are stripped with all other comments before matching).
        got: dict[int, set[str]] = {}
        for f in lint_text(pretend_path, text):
            got.setdefault(f.line, set()).add(f.rule)

        for line_no, rules in sorted(expected.items()):
            missing = rules - got.get(line_no, set())
            for r in sorted(missing):
                failures.append(f"{fixture.name}:{line_no}: expected a "
                                f"[{r}] finding, got none")
        for line_no, rules in sorted(got.items()):
            spurious = rules - expected.get(line_no, set())
            for r in sorted(spurious):
                failures.append(f"{fixture.name}:{line_no}: unexpected "
                                f"[{r}] finding")
        checked += 1

    if failures:
        print(f"idlered_lint --self-test: {len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"idlered_lint --self-test: OK "
          f"({checked} fixtures, {len(RULES)} rules)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="idlered_lint.py",
                                     description=__doc__)
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="specific files to lint (default: whole repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the rules against tests/lint/ fixtures")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    try:
        paths = args.files if args.files else repo_files()
        findings = lint_paths(paths)
    except (OSError, ValueError) as e:
        print(f"idlered_lint: error: {e}", file=sys.stderr)
        return 2

    for f in findings:
        print(f)
    if findings:
        print(f"idlered_lint: {len(findings)} finding(s)")
        return 1
    print(f"idlered_lint: clean ({len(paths)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
