#!/usr/bin/env python3
"""idlered_lint: repo-specific invariant linter.

Encodes rules that generic static analyzers cannot know about this codebase
(see DESIGN.md §8 for the full analysis stack):

  determinism       No ambient entropy or wall-clock reads in src/ outside
                    src/util/: std::random_device, time(), rand()/srand(),
                    std::chrono::*::now(). The evaluation engine guarantees
                    bit-identical reports for any thread count; one stray
                    clock or entropy read breaks that silently. util/ holds
                    the audited entry points (util::Rng, monotonic_seconds).

  deprecated-eval   No calls to the deprecated evaluate_expected /
                    evaluate_sampled / offline_cost_total wrappers outside
                    their definitions (src/sim/evaluator.{h,cpp}). New code
                    goes through sim::evaluate(policy, stops, EvalOptions).
                    Calls split across lines by a formatter (callee name at
                    end of line, `(` opening the next) are caught too — the
                    historical per-line matcher missed them.

  deprecated-lp     No value-type LP path in src/ outside its home
                    (src/lp/simplex.{h,cpp}, where the compatibility
                    wrapper lives): `lp::Problem`, its `lp::Constraint`
                    builder, and the one-argument `lp::solve(problem)`
                    overload all allocate per solve. Library code —
                    including the multislope COA in src/costmodel/ — solves
                    through the arena workspace API of src/lp/arena.h
                    (lp::Workspace + lp::solve(Workspace&, ProblemView) or
                    lp::solve_batch), which is allocation-free and
                    bit-identical. Tests/benches/tools/examples may use the
                    value type freely — differential coverage of the two
                    paths depends on it.

  float-compare     No raw == / != against a floating-point literal in src/
                    without an approved-comparison annotation. Exact
                    floating comparison is occasionally correct (sentinel
                    zeros, exact branch cuts) but must be declared, not
                    accidental: annotate with `lint: allow(float-compare):
                    <reason>`.

  thread-outside-engine
                    No std::thread / std::jthread / std::async construction
                    in src/ outside src/engine/. All parallelism flows
                    through the engine's work-stealing pool so determinism
                    and shutdown stay centralized.

  header-hygiene    Every header under src/ starts with #pragma once (or a
                    classic include guard) and contains no `using namespace`
                    at any scope.

  io-quarantine     No raw stdio/iostream writes (printf/fprintf/puts/fputs,
                    std::cout/cerr/clog) in src/ outside src/obs/ and
                    src/util/. Library code reports through the obs layer
                    (metrics + structured events) or returns values; ad-hoc
                    prints bypass both and end up interleaved across the
                    thread pool. Benches, examples, tools and tests print
                    freely.

  unannotated-mutex Every std::mutex / std::condition_variable member or
                    local in src/ must use the annotated wrappers
                    (util::Mutex / util::CondVar, src/util/
                    thread_annotations.h) so Clang -Wthread-safety can see
                    it, or carry `lint: allow(unannotated-mutex): <reason>`.
                    The wrapper header itself is the one exempt home.

  raw-union-cast    No reinterpret_cast, memcpy-based type punning, or raw
                    std::bit_cast in src/ outside src/util/. Bit-level
                    reads/writes go through the audited, endian-explicit
                    helpers in src/util/bits.h (util::bit_cast,
                    util::load_le64/store_le64, ...) so the WAL/FNV replay
                    path stays UBSan-clean by construction.

  lock-discipline   No blocking or IO calls while holding a util::LockGuard
                    in the hot-path modules (src/serve/, src/engine/,
                    src/sim/): sleep_for/sleep_until, fopen/fread/fwrite/
                    fclose/fflush/fprintf, fstream construction, .join(),
                    system(), or a nested util::LockGuard. Stage the work,
                    then lock for the pointer/flag swap.

Suppression: append `// lint: allow(<rule>): <reason>` on the offending
line, or place it alone on the line directly above. The reason is
mandatory — bare allows are themselves a finding.

Backends: every rule has a regex implementation over comment/string-stripped
source. The three concurrency rules (unannotated-mutex, raw-union-cast,
lock-discipline) additionally have an AST implementation on libclang
(clang.cindex), which understands types and scopes instead of tokens.
`--backend auto` (default) uses the AST where the bindings are importable
and falls back to regex otherwise, so minimal runners stay green;
`--backend ast` hard-fails when libclang is missing (CI uses this);
`--backend regex` forces the fallback. Fixtures are validated against
every active backend — the two implementations must agree line-for-line.

Usage:
  tools/idlered_lint.py              lint the repository (src/, examples/,
                                     bench/, tools/, tests/ as scoped above)
  tools/idlered_lint.py --self-test  run against tests/lint/ fixtures
  tools/idlered_lint.py FILE...      lint specific files (paths relative to
                                     the repo root determine rule scope)
  tools/idlered_lint.py --backend {auto,regex,ast}   select match backend

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

SCAN_DIRS = ("src", "examples", "bench", "tools", "tests")

ALLOW_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)(:\s*\S.*)?")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+|\d+\.\d*[eE][-+]?\d+)[fFlL]?"

RULES = {}


@dataclasses.dataclass
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class SourceFile:
    """A parsed C++ file: raw lines, comment/string-stripped lines, and the
    per-line set of `lint: allow(rule)` annotations (gathered from the raw
    text before stripping, honoring same-line and previous-line placement).
    """

    path: str
    raw_lines: list[str]
    code_lines: list[str]
    allows: list[dict[str, bool]]  # line index -> {rule: has_reason}

    def allowed(self, idx: int, rule: str) -> bool:
        return rule in self.allows[idx]


RAW_STRING_PREFIX_RE = re.compile(r"(?:u8|[uUL])?R")


def strip_comments_and_strings(text: str) -> str:
    """Replace comment and string-literal contents with spaces, preserving
    line structure so findings keep their line numbers.

    Lexing corners that used to produce false positives (and have
    regression fixtures in tests/lint/):
      - digit separators: in `1'000'000` the apostrophes are part of the
        pp-number, not char-literal quotes. Numbers are consumed as one
        token so a following comment/string is stripped correctly (the
        historical failure: `int n = 1'000;  // don't call time()` leaked
        `t call time() here` into the code channel).
      - raw strings: `R"(std::random_device)"` is blanked to its closing
        `)delim"`, not parsed as a regular string ending at the first `"`.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            prev = text[i - 1] if i > 0 else ""
            if (c.isdigit() or (c == "." and nxt.isdigit())) and \
                    not (prev.isalnum() or prev == "_"):
                # pp-number: consume digits, exponents, and digit
                # separators in one go so `'` never opens a char literal.
                j = i + 1
                while j < n:
                    ch = text[j]
                    if ch.isalnum() or ch in "._":
                        j += 1
                    elif ch == "'" and j + 1 < n and (
                            text[j + 1].isalnum() or text[j + 1] == "_"):
                        j += 1
                    elif ch in "+-" and text[j - 1] in "eEpP":
                        j += 1
                    else:
                        break
                out.append(text[i:j])
                i = j
                continue
            if c == '"':
                # Raw string? Look back at the token directly before the
                # quote for an R / u8R / uR / UR / LR prefix.
                k = i - 1
                while k >= 0 and (text[k].isalnum() or text[k] == "_"):
                    k -= 1
                prefix = text[k + 1:i]
                if RAW_STRING_PREFIX_RE.fullmatch(prefix):
                    paren = text.find("(", i + 1)
                    delim = text[i + 1:paren] if paren != -1 else None
                    if delim is not None and len(delim) <= 16 and \
                            not any(ch in delim for ch in " ()\\\t\n"):
                        close = text.find(")" + delim + '"', paren + 1)
                        end = n if close == -1 else close + len(delim) + 2
                        out.append('"')
                        for ch in text[i + 1:end]:
                            out.append("\n" if ch == "\n" else " ")
                        i = end
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def parse_source(path: str, text: str) -> SourceFile:
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    # Pad in case stripping dropped a trailing newline discrepancy.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")

    allows: list[dict[str, bool]] = [dict() for _ in raw_lines]
    for idx, raw in enumerate(raw_lines):
        for m in ALLOW_RE.finditer(raw):
            rule, reason = m.group(1), m.group(2)
            has_reason = bool(reason)
            allows[idx][rule] = has_reason
            # An allow in a comment-only line covers the next code line
            # (skipping the rest of the comment block it sits in).
            if raw.lstrip().startswith(("//", "*", "/*")):
                j = idx + 1
                while j < len(raw_lines) and not code_lines[j].strip():
                    allows[j][rule] = has_reason
                    j += 1
                if j < len(raw_lines):
                    allows[j][rule] = has_reason
    return SourceFile(path, raw_lines, code_lines, allows)


def rule(name):
    def deco(fn):
        RULES[name] = fn
        return fn

    return deco


def in_dir(path: str, prefix: str) -> bool:
    return path.startswith(prefix + "/")


def scan_pattern(src: SourceFile, rule_name: str, pattern: re.Pattern,
                 message: str) -> list[Finding]:
    findings = []
    for idx, line in enumerate(src.code_lines):
        if pattern.search(line) and not src.allowed(idx, rule_name):
            findings.append(Finding(src.path, idx + 1, rule_name, message))
    return findings


DETERMINISM_RE = re.compile(
    r"std::random_device"
    r"|\b(?:std::)?s?rand\s*\("
    r"|\b(?:std::)?time\s*\("
    r"|\bchrono\b[^;]*::now\s*\("
    r"|\b(?:steady_clock|system_clock|high_resolution_clock)::now\s*\("
)


@rule("determinism")
def rule_determinism(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src") or in_dir(src.path, "src/util"):
        return []
    return scan_pattern(
        src, "determinism", DETERMINISM_RE,
        "ambient entropy/clock read in src/ outside util/ — the engine's "
        "bit-identity guarantee forbids this; use util::Rng or "
        "util::monotonic_seconds()")


DEPRECATED_EVAL_NAMES = r"(?:evaluate_expected|evaluate_sampled|offline_cost_total)"

DEPRECATED_EVAL_RE = re.compile(rf"\b{DEPRECATED_EVAL_NAMES}\s*\(")

# A formatter may break the call between the callee name and its opening
# parenthesis; the per-line matcher above cannot see that (historical false
# negative — regression fixture fixture_deprecated_eval_multiline.cpp). The
# finding lands on the line carrying the name.
DEPRECATED_EVAL_EOL_RE = re.compile(rf"\b{DEPRECATED_EVAL_NAMES}\s*$")

DEPRECATED_EVAL_HOME = {"src/sim/evaluator.h", "src/sim/evaluator.cpp"}

DEPRECATED_EVAL_MSG = ("call to deprecated evaluator wrapper — use "
                       "sim::evaluate(policy, stops, EvalOptions)")


@rule("deprecated-eval")
def rule_deprecated_eval(src: SourceFile) -> list[Finding]:
    if not any(in_dir(src.path, d) for d in SCAN_DIRS):
        return []
    if src.path in DEPRECATED_EVAL_HOME:
        return []
    findings = scan_pattern(src, "deprecated-eval", DEPRECATED_EVAL_RE,
                            DEPRECATED_EVAL_MSG)
    for idx, line in enumerate(src.code_lines):
        if not DEPRECATED_EVAL_EOL_RE.search(line):
            continue
        j = idx + 1
        while j < len(src.code_lines) and not src.code_lines[j].strip():
            j += 1
        if j < len(src.code_lines) and \
                src.code_lines[j].lstrip().startswith("(") and \
                not src.allowed(idx, "deprecated-eval"):
            findings.append(Finding(src.path, idx + 1, "deprecated-eval",
                                    DEPRECATED_EVAL_MSG))
    return findings


# The whole value-type surface, not just the Problem type: the Constraint
# builder and the one-argument solve overload resurrect the heap path just
# as effectively (the arena solve always takes a workspace first, so the
# single-argument call form is unambiguous).
DEPRECATED_LP_RE = re.compile(
    r"\blp::(?:Problem|Constraint)\b"
    r"|\blp::solve\s*\(\s*[A-Za-z_:][\w:.]*\s*\)")

# Exception list for the value-type LP path: the compatibility wrapper's
# own definition. Everything else in src/ uses lp/arena.h.
DEPRECATED_LP_HOME = {"src/lp/simplex.h", "src/lp/simplex.cpp"}


@rule("deprecated-lp")
def rule_deprecated_lp(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    if src.path in DEPRECATED_LP_HOME:
        return []
    return scan_pattern(
        src, "deprecated-lp", DEPRECATED_LP_RE,
        "value-type LP path (lp::Problem / lp::Constraint / one-argument "
        "lp::solve) in src/ — the legacy path allocates per solve; use "
        "lp::Workspace + lp::solve(workspace, ProblemView) or "
        "lp::solve_batch (src/lp/arena.h)")


FLOAT_COMPARE_RE = re.compile(
    rf"[=!]=\s*[-+]?{FLOAT_LITERAL}(?![\w.])"
    rf"|(?<![\w.]){FLOAT_LITERAL}\s*[=!]=")


@rule("float-compare")
def rule_float_compare(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    findings = []
    for idx, line in enumerate(src.code_lines):
        for m in FLOAT_COMPARE_RE.finditer(line):
            # Skip ==/!= that are part of <=, >=, ===-like tokens (none in
            # C++, but cheap to guard) and preprocessor comparisons.
            start = m.start()
            if start > 0 and line[start - 1] in "<>!=":
                continue
            if line.lstrip().startswith("#"):
                continue
            if not src.allowed(idx, "float-compare"):
                findings.append(Finding(
                    src.path, idx + 1, "float-compare",
                    "raw ==/!= against a floating-point literal — use "
                    "util::approx_equal, or annotate the exact comparison "
                    "with `lint: allow(float-compare): <reason>`"))
            break  # one finding per line is enough
    return findings


THREAD_RE = re.compile(r"\bstd::(?:jthread|thread|async)\b(?!\s*::)")


@rule("thread-outside-engine")
def rule_thread(src: SourceFile) -> list[Finding]:
    # src/engine/ owns the pool; src/serve/ is the streaming service whose
    # producer-side entry points are called from arbitrary threads, so it
    # may stand up threads of its own (its pump still runs on the engine
    # pool — the exemption is for ingestion plumbing, not for bypassing
    # parallel_for).
    if not in_dir(src.path, "src") or in_dir(src.path, "src/engine") \
            or in_dir(src.path, "src/serve"):
        return []
    return scan_pattern(
        src, "thread-outside-engine", THREAD_RE,
        "thread construction outside src/engine/ or src/serve/ — all "
        "parallelism goes through engine::ThreadPool so determinism and "
        "shutdown stay centralized")


USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")


@rule("header-hygiene")
def rule_header_hygiene(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    if not src.path.endswith((".h", ".hpp")):
        return []
    findings = []
    text = "\n".join(src.code_lines)
    if "#pragma once" not in text and not re.search(
            r"#ifndef\s+\w+\s*\n\s*#define\s+\w+", text):
        findings.append(Finding(
            src.path, 1, "header-hygiene",
            "header lacks `#pragma once` (or a classic include guard)"))
    findings.extend(scan_pattern(
        src, "header-hygiene", USING_NAMESPACE_RE,
        "`using namespace` in a header leaks into every includer"))
    return findings


IO_QUARANTINE_RE = re.compile(
    r"\b(?:std::)?(?:f?printf|puts|fputs)\s*\("
    r"|\bstd::(?:cout|cerr|clog)\b")

IO_QUARANTINE_EXEMPT = ("src/obs", "src/util")


@rule("io-quarantine")
def rule_io_quarantine(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src"):
        return []
    if any(in_dir(src.path, d) for d in IO_QUARANTINE_EXEMPT):
        return []
    return scan_pattern(
        src, "io-quarantine", IO_QUARANTINE_RE,
        "raw stdio/iostream write in src/ — library code reports through "
        "the obs layer (src/obs/) or returns values; annotate a deliberate "
        "exception with `lint: allow(io-quarantine): <reason>`")


UNANNOTATED_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|\bstd::condition_variable(?:_any)?\b")

# The annotated wrapper's own definition is the one place raw primitives
# may appear: util::Mutex/util::CondVar wrap them there.
UNANNOTATED_MUTEX_HOME = {"src/util/thread_annotations.h"}

UNANNOTATED_MUTEX_MSG = (
    "raw std::mutex / std::condition_variable in src/ — use util::Mutex / "
    "util::CondVar (src/util/thread_annotations.h) so Clang "
    "-Wthread-safety can check the locking contract, or annotate with "
    "`lint: allow(unannotated-mutex): <reason>`")


@rule("unannotated-mutex")
def rule_unannotated_mutex(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src") or src.path in UNANNOTATED_MUTEX_HOME:
        return []
    return scan_pattern(src, "unannotated-mutex", UNANNOTATED_MUTEX_RE,
                        UNANNOTATED_MUTEX_MSG)


RAW_UNION_CAST_RE = re.compile(
    r"\breinterpret_cast\b"
    r"|\b(?:std::)?memcpy\s*\("
    r"|\bstd::bit_cast\b")

RAW_UNION_CAST_MSG = (
    "reinterpret_cast / memcpy punning / raw std::bit_cast in src/ outside "
    "src/util/ — bit-level access goes through the audited helpers in "
    "src/util/bits.h (util::bit_cast, util::load_le64/store_le64, ...)")


@rule("raw-union-cast")
def rule_raw_union_cast(src: SourceFile) -> list[Finding]:
    if not in_dir(src.path, "src") or in_dir(src.path, "src/util"):
        return []
    return scan_pattern(src, "raw-union-cast", RAW_UNION_CAST_RE,
                        RAW_UNION_CAST_MSG)


# Hot-path modules where a held lock stalls the pump or the eval workers.
# src/obs/ is deliberately out of scope: Recorder::flush writes its JSONL
# sink under its own lock by design (cold path, documented).
LOCK_DISCIPLINE_DIRS = ("src/serve", "src/engine", "src/sim")

LOCK_GUARD_DECL_RE = re.compile(r"\butil::LockGuard\s+\w+\s*[({]")

LOCK_DISCIPLINE_DENY_RE = re.compile(
    r"\bsleep_(?:for|until)\s*\("
    r"|\bf(?:open|close|read|write|flush|printf)\s*\("
    r"|\bstd::(?:basic_)?[io]?fstream\b"
    r"|\.\s*join\s*\("
    r"|\bsystem\s*\(")

LOCK_DISCIPLINE_MSG = (
    "blocking/IO call while holding a util::LockGuard on the hot path — "
    "stage the work outside the critical section and lock only for the "
    "pointer/flag swap")

LOCK_DISCIPLINE_NESTED_MSG = (
    "nested util::LockGuard while another guard is held — the hot-path "
    "discipline is one lock at a time (lock-ordering deadlocks are "
    "impossible by construction); restructure as two-phase locking")


@rule("lock-discipline")
def rule_lock_discipline(src: SourceFile) -> list[Finding]:
    if not any(in_dir(src.path, d) for d in LOCK_DISCIPLINE_DIRS):
        return []
    findings = []
    depth = 0
    guard_depths: list[int] = []  # brace depth at each live guard's decl
    for idx, line in enumerate(src.code_lines):
        decl = LOCK_GUARD_DECL_RE.search(line)
        deny = LOCK_DISCIPLINE_DENY_RE.search(line)
        held_at = lambda col: bool(guard_depths) or (  # noqa: E731
            decl is not None and decl.start() < col)
        if deny and held_at(deny.start()) and \
                not src.allowed(idx, "lock-discipline"):
            findings.append(Finding(src.path, idx + 1, "lock-discipline",
                                    LOCK_DISCIPLINE_MSG))
        if decl and guard_depths and not src.allowed(idx, "lock-discipline"):
            findings.append(Finding(src.path, idx + 1, "lock-discipline",
                                    LOCK_DISCIPLINE_NESTED_MSG))
        # Track scopes char-by-char: a guard declared at depth d is pushed
        # at its declaration position and dies when depth drops below d,
        # so one-line `{ guard; }` scopes close on the same line.
        for pos, ch in enumerate(line):
            if decl is not None and pos == decl.start():
                guard_depths.append(depth)
                decl = None
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while guard_depths and depth < guard_depths[-1]:
                    guard_depths.pop()
        if decl is not None:
            guard_depths.append(depth)
    return findings


# ---------------------------------------------------------------------------
# AST backend (libclang / clang.cindex)
#
# The three concurrency rules re-implemented on real types and scopes: a
# std::mutex hidden behind an alias, a reinterpret_cast produced by a macro,
# or a blocking call three lines into a guard's scope are all invisible (or
# fragile) to token matching. The regex implementations above remain the
# fallback so minimal runners without the libclang python bindings keep
# linting; fixtures are validated against both so the implementations
# cannot drift apart.

# Rules with an AST implementation; when the AST backend is active it
# replaces the regex implementation of exactly these.
AST_RULES = {"unannotated-mutex", "raw-union-cast", "lock-discipline"}


class AstBackend:
    """libclang-based matcher for the concurrency rules."""

    PARSE_ARGS = ["-x", "c++", "-std=c++20", f"-I{REPO_ROOT / 'src'}"]

    # Callee names whose qualified form is banned outside src/util/.
    RAW_CAST_CALLEES = {"memcpy", "std::memcpy", "std::bit_cast"}

    # Unqualified callee names that block or do IO while a lock is held.
    DENY_CALLEES = {"sleep_for", "sleep_until", "fopen", "fclose", "fread",
                    "fwrite", "fflush", "fprintf", "join", "system"}

    FSTREAM_TYPE_RE = re.compile(r"\bstd::(?:basic_)?[io]?fstream\b")

    def __init__(self, cindex, index):
        self._cindex = cindex
        self._index = index

    @classmethod
    def load(cls) -> tuple["AstBackend | None", str | None]:
        """Try to stand up libclang; (backend, None) or (None, reason)."""
        try:
            from clang import cindex  # noqa: PLC0415 (optional dependency)
        except ImportError as e:
            return None, f"python clang bindings unavailable ({e})"
        try:
            index = cindex.Index.create()
        except Exception as first_error:  # library not found / mismatch
            # Debian/Ubuntu install versioned libraries the bindings do
            # not always find on their own; probe the usual spots.
            import glob as _glob
            candidates = sorted(
                _glob.glob("/usr/lib/llvm-*/lib/libclang*.so*")
                + _glob.glob("/usr/lib/x86_64-linux-gnu/libclang-*.so*"),
                reverse=True)
            index = None
            for lib in candidates:
                try:
                    cindex.Config.loaded = False
                    cindex.Config.set_library_file(lib)
                    index = cindex.Index.create()
                    break
                except Exception:
                    continue
            if index is None:
                return None, f"libclang failed to load ({first_error})"
        return cls(cindex, index), None

    def lint(self, src: SourceFile, text: str) -> list[Finding]:
        if not in_dir(src.path, "src"):
            return []
        tu = self._index.parse(src.path, args=self.PARSE_ARGS,
                               unsaved_files=[(src.path, text)])
        findings = []
        findings.extend(self._unannotated_mutex(src, tu))
        findings.extend(self._raw_union_cast(src, tu))
        findings.extend(self._lock_discipline(src, tu))
        return findings

    # -- shared cursor helpers ------------------------------------------

    def _cursors(self, tu, path: str):
        for c in tu.cursor.walk_preorder():
            loc = c.location
            if loc.file is not None and loc.file.name == path:
                yield c

    def _type_spellings(self, cursor) -> set[str]:
        t = cursor.type
        return {t.spelling, t.get_canonical().spelling}

    def _qualified_callee(self, call) -> str:
        """Fully qualified name of a CALL_EXPR's callee (e.g.
        `idlered::util::bit_cast`), or its bare spelling if unresolved."""
        ck = self._cindex.CursorKind
        ref = call.referenced
        if ref is None:
            return call.spelling or ""
        parts = []
        c = ref
        while c is not None and c.kind != ck.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def _emit(self, src: SourceFile, line: int, rule_name: str,
              message: str, out: list[Finding]) -> None:
        if 1 <= line <= len(src.allows) and src.allowed(line - 1, rule_name):
            return
        out.append(Finding(src.path, line, rule_name, message))

    # -- rules ----------------------------------------------------------

    def _unannotated_mutex(self, src: SourceFile, tu) -> list[Finding]:
        if src.path in UNANNOTATED_MUTEX_HOME:
            return []
        ck = self._cindex.CursorKind
        out: list[Finding] = []
        for c in self._cursors(tu, src.path):
            if c.kind not in (ck.FIELD_DECL, ck.VAR_DECL):
                continue
            if any(UNANNOTATED_MUTEX_RE.search(s)
                   for s in self._type_spellings(c)):
                self._emit(src, c.location.line, "unannotated-mutex",
                           UNANNOTATED_MUTEX_MSG, out)
        return out

    def _raw_union_cast(self, src: SourceFile, tu) -> list[Finding]:
        if in_dir(src.path, "src/util"):
            return []
        ck = self._cindex.CursorKind
        out: list[Finding] = []
        seen: set[int] = set()
        for c in self._cursors(tu, src.path):
            hit = False
            if c.kind == ck.CXX_REINTERPRET_CAST_EXPR:
                hit = True
            elif c.kind == ck.CALL_EXPR:
                hit = self._qualified_callee(c) in self.RAW_CAST_CALLEES
            if hit and c.location.line not in seen:
                seen.add(c.location.line)
                self._emit(src, c.location.line, "raw-union-cast",
                           RAW_UNION_CAST_MSG, out)
        return out

    def _lock_discipline(self, src: SourceFile, tu) -> list[Finding]:
        if not any(in_dir(src.path, d) for d in LOCK_DISCIPLINE_DIRS):
            return []
        ck = self._cindex.CursorKind
        # (decl_offset, scope_end_offset, line) per util::LockGuard local.
        guards: list[tuple[int, int, int]] = []
        # (offset, line, message) per blocking/IO event.
        events: list[tuple[int, int, str]] = []

        def visit(cursor, scope_end: int) -> None:
            for ch in cursor.get_children():
                child_scope_end = scope_end
                if ch.kind == ck.COMPOUND_STMT and ch.extent.end.offset:
                    child_scope_end = ch.extent.end.offset
                loc = ch.location
                if loc.file is not None and loc.file.name == src.path:
                    if ch.kind == ck.VAR_DECL:
                        spellings = self._type_spellings(ch)
                        if any("LockGuard" in s for s in spellings):
                            guards.append((ch.extent.start.offset,
                                           child_scope_end, loc.line))
                        elif any(self.FSTREAM_TYPE_RE.search(s)
                                 for s in spellings):
                            events.append((ch.extent.start.offset, loc.line,
                                           LOCK_DISCIPLINE_MSG))
                    elif ch.kind == ck.CALL_EXPR and \
                            ch.spelling in self.DENY_CALLEES:
                        events.append((ch.extent.start.offset, loc.line,
                                       LOCK_DISCIPLINE_MSG))
                visit(ch, child_scope_end)

        visit(tu.cursor, 0)

        out: list[Finding] = []
        emitted: set[int] = set()
        for off, line, message in events:
            if line not in emitted and any(
                    g_off < off <= g_end for g_off, g_end, _ in guards):
                emitted.add(line)
                self._emit(src, line, "lock-discipline", message, out)
        for g_off, g_end, g_line in guards:
            nested = any(o_off < g_off <= o_end
                         for o_off, o_end, _ in guards
                         if (o_off, o_end) != (g_off, g_end))
            if nested and g_line not in emitted:
                emitted.add(g_line)
                self._emit(src, g_line, "lock-discipline",
                           LOCK_DISCIPLINE_NESTED_MSG, out)
        return out


def lint_text(path: str, text: str,
              ast_backend: "AstBackend | None" = None) -> list[Finding]:
    src = parse_source(path, text)
    findings = []
    for name, fn in RULES.items():
        if ast_backend is not None and name in AST_RULES:
            continue
        findings.extend(fn(src))
    if ast_backend is not None:
        findings.extend(ast_backend.lint(src, text))
    # A bare allow without a reason is itself a finding: suppressions must
    # say why (CONTRIBUTING.md policy).
    for idx, allows in enumerate(src.allows):
        for rule_name, has_reason in allows.items():
            if not has_reason and ALLOW_RE.search(src.raw_lines[idx]):
                findings.append(Finding(
                    path, idx + 1, "bare-allow",
                    f"`lint: allow({rule_name})` needs a reason: "
                    f"`lint: allow({rule_name}): <why>`"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def repo_files() -> list[pathlib.Path]:
    files = []
    for d in SCAN_DIRS:
        base = REPO_ROOT / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                rel = p.relative_to(REPO_ROOT).as_posix()
                if rel.startswith("tests/lint/"):
                    continue  # fixtures intentionally violate rules
                files.append(p)
    return files


def lint_paths(paths: list[pathlib.Path],
               ast_backend: "AstBackend | None" = None) -> list[Finding]:
    findings = []
    for p in paths:
        rel = p.resolve().relative_to(REPO_ROOT).as_posix()
        findings.extend(lint_text(rel, p.read_text(encoding="utf-8"),
                                  ast_backend))
    return findings


def resolve_backend(choice: str) -> tuple["AstBackend | None", str]:
    """Map a --backend choice to (backend-or-None, description). Exits via
    SystemExit(2) when `ast` is requested but unavailable."""
    if choice == "regex":
        return None, "regex"
    backend, reason = AstBackend.load()
    if backend is not None:
        return backend, "ast (libclang)"
    if choice == "ast":
        print(f"idlered_lint: error: --backend ast requested but {reason}",
              file=sys.stderr)
        raise SystemExit(2)
    return None, f"regex ({reason})"


FIXTURE_HEADER_RE = re.compile(
    r"lint-fixture:\s*path=(\S+)(?:\s+expect=([a-z-]+(?:,[a-z-]+)*))?")
BAD_MARKER = "LINT-BAD"


def self_test(backend_choice: str = "auto") -> int:
    """Validate the linter against tests/lint/ fixtures.

    Each fixture declares, in its first line, the repo path it pretends to
    live at (rule scoping is path-based). Lines that must trigger a finding
    carry a LINT-BAD marker comment naming the rule:
        double x; if (x == 1.0) {}  // LINT-BAD(float-compare)
    The self-test fails if any marked line produces no finding of that rule,
    or any unmarked line produces one.

    Every fixture is checked under the regex backend, and — when libclang
    is importable (or --backend ast forces it) — again under the AST
    backend. The marker set is the contract both implementations must
    satisfy line-for-line, which is what keeps them from drifting apart.
    """
    fixture_dir = REPO_ROOT / "tests" / "lint"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + \
        sorted(fixture_dir.glob("*.h"))
    if not fixtures:
        print(f"idlered_lint --self-test: no fixtures in {fixture_dir}",
              file=sys.stderr)
        return 2

    backends: list[tuple[str, "AstBackend | None"]] = []
    if backend_choice != "ast":
        backends.append(("regex", None))
    if backend_choice != "regex":
        ast_backend, label = resolve_backend(backend_choice)
        if ast_backend is not None:
            backends.append(("ast", ast_backend))
        elif backend_choice == "auto":
            print(f"idlered_lint --self-test: note: {label}; "
                  f"AST backend not exercised")

    failures = []
    checked = 0
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        first_line = text.splitlines()[0] if text else ""
        header = FIXTURE_HEADER_RE.search(first_line)
        if not header:
            failures.append(f"{fixture.name}: missing `lint-fixture: "
                            f"path=...` header on line 1")
            continue
        pretend_path = header.group(1)

        expected: dict[int, set[str]] = {}
        for idx, line in enumerate(text.splitlines()):
            for m in re.finditer(rf"{BAD_MARKER}\(([a-z-]+)\)", line):
                expected.setdefault(idx + 1, set()).add(m.group(1))

        # The marker comments themselves must not confuse the rules (they
        # are stripped with all other comments before matching).
        for backend_name, backend in backends:
            got: dict[int, set[str]] = {}
            for f in lint_text(pretend_path, text, backend):
                got.setdefault(f.line, set()).add(f.rule)

            for line_no, rules in sorted(expected.items()):
                missing = rules - got.get(line_no, set())
                for r in sorted(missing):
                    failures.append(f"{fixture.name}:{line_no}: expected a "
                                    f"[{r}] finding, got none "
                                    f"[{backend_name} backend]")
            for line_no, rules in sorted(got.items()):
                spurious = rules - expected.get(line_no, set())
                for r in sorted(spurious):
                    failures.append(f"{fixture.name}:{line_no}: unexpected "
                                    f"[{r}] finding [{backend_name} backend]")
        checked += 1

    if failures:
        print(f"idlered_lint --self-test: {len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"idlered_lint --self-test: OK "
          f"({checked} fixtures, {len(RULES)} rules, "
          f"backends: {', '.join(name for name, _ in backends)})")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="idlered_lint.py",
                                     description=__doc__)
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="specific files to lint (default: whole repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the rules against tests/lint/ fixtures")
    parser.add_argument("--backend", choices=("auto", "regex", "ast"),
                        default="auto",
                        help="matcher for the concurrency rules: libclang "
                             "AST when available (auto), forced (ast), or "
                             "token matching only (regex)")
    args = parser.parse_args(argv)

    try:
        if args.self_test:
            return self_test(args.backend)
        ast_backend, backend_label = resolve_backend(args.backend)
        paths = args.files if args.files else repo_files()
        findings = lint_paths(paths, ast_backend)
    except SystemExit as e:
        return int(e.code or 0)
    except (OSError, ValueError) as e:
        print(f"idlered_lint: error: {e}", file=sys.stderr)
        return 2

    for f in findings:
        print(f)
    if findings:
        print(f"idlered_lint: {len(findings)} finding(s)")
        return 1
    print(f"idlered_lint: clean ({len(paths)} files, "
          f"backend: {backend_label})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
