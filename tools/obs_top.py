#!/usr/bin/env python3
"""obs_top: live terminal view of an obs::Exporter metrics file.

Polls a METRICS_<name>.json file (the JSON side of the exporter pair;
written atomically, so a read never sees a torn document) and redraws a
compact dashboard: counters with per-interval rates, gauges, and the
log-histogram latency quantiles. Point it at the file a bench writes when
run with --export and watch the serve pipeline in flight:

  build/bench/bench_serve_throughput --trace --export &
  tools/obs_top.py METRICS_serve_throughput.json

Options:
  --interval SECONDS   poll period (default 1.0)
  --once               render a single frame and exit (no screen clearing;
                       this is what CI uses to smoke the format)
  --filter PREFIX      only show metrics whose name starts with PREFIX

Exit codes: 0 on quit/EOF, 2 if the file never appears or is invalid.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != "idlered-metrics-v1":
        raise ValueError(f"{path}: not an idlered-metrics-v1 document")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: missing \"metrics\" block")
    return doc


def fmt_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.1f}us"


def render(doc: dict, prev: dict | None, name_filter: str) -> str:
    metrics = doc["metrics"]
    prev_counters = (prev or {}).get("metrics", {}).get("counters", {})
    dt = None
    if prev is not None:
        dt = doc.get("t", 0.0) - prev.get("t", 0.0)
        if not dt or dt <= 0:
            dt = None
    lines = [f"obs_top — export t={doc.get('t', 0.0):.3f}s "
             f"write #{doc.get('writes', '?')}"]

    counters = {k: v for k, v in metrics.get("counters", {}).items()
                if k.startswith(name_filter)}
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for k in sorted(counters):
            rate = ""
            if dt is not None and k in prev_counters:
                rate = f"  ({(counters[k] - prev_counters[k]) / dt:,.0f}/s)"
            lines.append(f"  {k.ljust(width)}  "
                         f"{fmt_value(counters[k]):>12}{rate}")

    gauges = {k: v for k, v in metrics.get("gauges", {}).items()
              if k.startswith(name_filter)}
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for k in sorted(gauges):
            lines.append(f"  {k.ljust(width)}  {fmt_value(gauges[k]):>12}")

    log_hists = {k: v for k, v in metrics.get("log_histograms", {}).items()
                 if k.startswith(name_filter)}
    if log_hists:
        lines.append("latency quantiles:")
        width = max(len(k) for k in log_hists)
        for k in sorted(log_hists):
            h = log_hists[k]
            fmt = fmt_seconds if k.endswith(".seconds") else fmt_value
            lines.append(
                f"  {k.ljust(width)}  n={h.get('count', 0):<8} "
                f"p50={fmt(h.get('p50', 0.0)):>9} "
                f"p90={fmt(h.get('p90', 0.0)):>9} "
                f"p99={fmt(h.get('p99', 0.0)):>9} "
                f"p99.9={fmt(h.get('p999', 0.0)):>9} "
                f"max={fmt(h.get('max', 0.0)):>9}")

    if len(lines) == 1:
        lines.append("  (no metrics match)" if name_filter
                     else "  (no metrics yet)")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="obs_top.py", description=__doc__)
    parser.add_argument("path", help="METRICS_<name>.json written by "
                                     "obs::Exporter")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll period in seconds (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit")
    parser.add_argument("--filter", default="", metavar="PREFIX",
                        help="only metrics starting with PREFIX")
    args = parser.parse_args(argv)

    prev: dict | None = None
    waited = 0.0
    while True:
        try:
            doc = load(args.path)
        except FileNotFoundError:
            if args.once or waited >= 30.0:
                print(f"obs_top: error: {args.path} not found",
                      file=sys.stderr)
                return 2
            time.sleep(args.interval)
            waited += args.interval
            continue
        except (ValueError, json.JSONDecodeError) as e:
            print(f"obs_top: error: {e}", file=sys.stderr)
            return 2

        frame = render(doc, prev, args.filter)
        if args.once:
            print(frame)
            return 0
        # ANSI home+clear keeps the frame flicker-free on any terminal;
        # plain scrolling when stdout is a pipe.
        if os.isatty(1):
            sys.stdout.write("\x1b[H\x1b[2J")
        print(frame, flush=True)
        prev = doc
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
