// idlered_cli — the library's command-line front end.
//
//   idlered_cli breakeven [--displacement L] [--fuel-price USD]
//                         [--conventional]
//   idlered_cli advise <history.csv> [--break-even B]
//   idlered_cli region  [--size N]
//   idlered_cli simulate [--area NAME] [--vehicles N] [--break-even B]
//                        [--seed S]
//   idlered_cli worstcase --mu MU --q Q [--break-even B]
//   idlered_cli cycles  [--break-even B]
//
// Each subcommand is a thin veneer over the public API; the examples in
// examples/ show the same flows as annotated source code.
#include <cstdio>
#include <string>

#include "analysis/adversary.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "core/region.h"
#include "costmodel/break_even.h"
#include "sim/evaluator.h"
#include "sim/fleet_eval.h"
#include "traces/drive_cycles.h"
#include "traces/fleet_generator.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

int usage() {
  std::printf(
      "usage: idlered_cli <command> [options]\n\n"
      "commands:\n"
      "  breakeven   compute the break-even interval B for a vehicle\n"
      "              [--displacement L] [--fuel-price USD] [--conventional]\n"
      "  advise      recommend a shut-off rule from a stop history CSV\n"
      "              <history.csv> [--break-even B]\n"
      "  region      print the Figure-1 strategy-selection map [--size N]\n"
      "  simulate    fleet strategy comparison on a synthetic area\n"
      "              [--area California|Chicago|Atlanta] [--vehicles N]\n"
      "              [--break-even B] [--seed S]\n"
      "  worstcase   worst-case analysis at given statistics\n"
      "              --mu MU_SECONDS --q Q [--break-even B]\n"
      "  cycles      strategy comparison on certification drive cycles\n"
      "              [--break-even B]\n");
  return 2;
}

int cmd_breakeven(const util::Args& args) {
  costmodel::VehicleConfig v = args.has("conventional")
                                   ? costmodel::conventional_vehicle()
                                   : costmodel::ssv_vehicle();
  if (args.has("displacement")) {
    v.engine.displacement_liters = args.value_or("displacement", 2.5);
    v.engine.measured_idle_fuel_cc_per_s = 0.0;  // use the eq. 45 regression
  }
  v.fuel.usd_per_gallon = args.value_or("fuel-price", v.fuel.usd_per_gallon);
  std::printf("%s", costmodel::compute_break_even(v).describe().c_str());
  return 0;
}

int cmd_advise(const util::Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "advise: missing history.csv\n");
    return 2;
  }
  const auto doc = util::read_csv_file(args.positional()[1], true);
  const int col = doc.column("stop_s");
  if (col < 0) {
    std::fprintf(stderr, "advise: CSV needs a stop_s column\n");
    return 1;
  }
  std::vector<double> stops;
  for (const auto& row : doc.rows) {
    stops.push_back(std::stod(row.at(static_cast<std::size_t>(col))));
  }
  if (stops.empty()) {
    std::fprintf(stderr, "advise: no stops in history\n");
    return 1;
  }
  const double b =
      args.value_or("break-even", costmodel::kPaperBreakEvenSsv);
  core::ProposedPolicy coa(b, stops);
  std::printf("stops: %zu | mu_B- = %.2f s | q_B+ = %.3f | B = %.1f s\n",
              stops.size(), coa.stats().mu_b_minus, coa.stats().q_b_plus, b);
  std::printf("strategy: %s", core::to_string(coa.choice().strategy).c_str());
  if (coa.choice().strategy == core::Strategy::kBDet) {
    std::printf(" (shut off after %.1f s)", coa.choice().b);
  }
  std::printf(" | worst-case CR guarantee %.3f\n", coa.worst_case_cr());
  std::printf("on this history: CR %.3f (never-off %.3f, always-off %.3f)\n",
              sim::evaluate(coa, stops).cr(),
              sim::evaluate(*core::make_nev(b), stops).cr(),
              sim::evaluate(*core::make_toi(b), stops).cr());
  return 0;
}

int cmd_region(const util::Args& args) {
  const int n = args.value_or("size", 48);
  const auto cells = core::compute_region_map(28.0, n, n);
  std::printf("%s", core::render_region_map(cells, n, n).c_str());
  std::printf("T = turn off immediately, D = wait B, b = wait b*, "
              "N = randomized, . = infeasible\n");
  return 0;
}

int cmd_simulate(const util::Args& args) {
  const std::string area_name =
      args.value_or("area", std::string("Chicago"));
  traces::AreaProfile profile;
  bool found = false;
  for (const auto& a : traces::all_areas()) {
    if (a.name == area_name) {
      profile = a;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "simulate: unknown area %s\n", area_name.c_str());
    return 1;
  }
  profile.num_vehicles_driving = args.value_or("vehicles", 100);
  const double b =
      args.value_or("break-even", costmodel::kPaperBreakEvenSsv);
  util::Rng rng(static_cast<std::uint64_t>(args.value_or("seed", 1)));
  const auto fleet = traces::generate_area_fleet(profile, rng);
  const auto cmp =
      sim::compare_strategies(fleet, b, sim::standard_strategy_set());
  const auto means = cmp.mean_cr();
  const auto worsts = cmp.worst_cr();
  const auto best = cmp.best_counts(1e-9);
  util::Table table({"strategy", "average CR", "worst CR", "best on"});
  for (std::size_t s = 0; s < cmp.num_strategies(); ++s) {
    table.add_row({cmp.strategy_names[s], util::fmt(means[s], 3),
                   worsts[s] > 100.0 ? ">100" : util::fmt(worsts[s], 3),
                   std::to_string(best[s])});
  }
  std::printf("%s at B = %.0f s, %zu vehicles:\n%s", area_name.c_str(), b,
              cmp.vehicles.size(), table.str().c_str());
  return 0;
}

int cmd_worstcase(const util::Args& args) {
  if (!args.has("mu") || !args.has("q")) {
    std::fprintf(stderr, "worstcase: need --mu and --q\n");
    return 2;
  }
  const double b =
      args.value_or("break-even", costmodel::kPaperBreakEvenSsv);
  dist::ShortStopStats s;
  s.mu_b_minus = args.value_or("mu", 0.0);
  s.q_b_plus = args.value_or("q", 0.0);
  if (!s.feasible(b)) {
    std::fprintf(stderr,
                 "worstcase: infeasible statistics (need mu <= B(1-q))\n");
    return 1;
  }
  const auto choice = core::choose_strategy(s, b);
  util::Table table({"strategy", "worst-case cost", "worst-case CR"});
  table.add_row({"TOI", util::fmt(core::worst_case_cost_toi(s, b), 3),
                 util::fmt(core::worst_case_cr_toi(s, b), 3)});
  table.add_row({"DET", util::fmt(core::worst_case_cost_det(s, b), 3),
                 util::fmt(core::worst_case_cr_det(s, b), 3)});
  const double bdet = core::worst_case_cost_b_det(s, b);
  table.add_row({"b-DET", std::isfinite(bdet) ? util::fmt(bdet, 3) : "inf",
                 std::isfinite(bdet)
                     ? util::fmt(core::worst_case_cr_b_det(s, b), 3)
                     : "inf"});
  table.add_row({"N-Rand", util::fmt(core::worst_case_cost_nrand(s, b), 3),
                 util::fmt(core::worst_case_cr_nrand(s, b), 3)});
  std::printf("%s", table.str().c_str());
  std::printf("\nCOA selects %s (cost %.3f, CR %.3f",
              core::to_string(choice.strategy).c_str(), choice.expected_cost,
              choice.cr);
  if (choice.strategy == core::Strategy::kBDet) {
    std::printf(", b* = %.2f s", choice.b);
  }
  std::printf(")\n");

  core::ProposedPolicy coa(b, s);
  const auto adv = analysis::worst_case_adversary(coa, s);
  std::printf("LP adversary certificate: %.4f (atoms:", adv.expected_cost);
  for (const auto& atom : adv.atoms) {
    std::printf(" %.1fs@%.3f", atom.stop_length, atom.probability);
  }
  std::printf(")\n");
  return 0;
}

int cmd_cycles(const util::Args& args) {
  const double b =
      args.value_or("break-even", costmodel::kPaperBreakEvenSsv);
  util::Table table({"cycle", "idle %", "stops", "COA picks", "COA CR",
                     "TOI CR", "DET CR", "NEV CR"});
  for (const auto& cycle : traces::standard_cycles()) {
    core::ProposedPolicy coa(b, cycle.stop_lengths_s);
    table.add_row(
        {cycle.name, util::fmt(100.0 * cycle.idle_fraction(), 1),
         std::to_string(cycle.num_stops()),
         core::to_string(coa.choice().strategy),
         util::fmt(sim::evaluate(coa, cycle.stop_lengths_s).cr(), 3),
         util::fmt(sim::evaluate(*core::make_toi(b),
                                          cycle.stop_lengths_s).cr(), 3),
         util::fmt(sim::evaluate(*core::make_det(b),
                                          cycle.stop_lengths_s).cr(), 3),
         util::fmt(sim::evaluate(*core::make_nev(b),
                                          cycle.stop_lengths_s).cr(), 3)});
  }
  std::printf("certification cycles at B = %.0f s:\n%s", b,
              table.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string& cmd = args.positional()[0];
    if (cmd == "breakeven") return cmd_breakeven(args);
    if (cmd == "advise") return cmd_advise(args);
    if (cmd == "region") return cmd_region(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "worstcase") return cmd_worstcase(args);
    if (cmd == "cycles") return cmd_cycles(args);
    std::fprintf(stderr, "unknown command: %s\n\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
