#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite in a normal build, the whole
# suite plus the fault-injection bench under ASan/UBSan, the parallel
# evaluation engine under ThreadSanitizer, and the static-analysis stack
# (clang-tidy when available, the custom idlered_lint rules, and the math
# contracts in throwing mode). Run from anywhere; builds land in
# <repo>/build, <repo>/build-asan, and <repo>/build-tsan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== 1/5 normal build + ctest =="
cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== 2/5 sanitized build + ctest (ASan + UBSan) =="
cmake -B "$repo/build-asan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=ON
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== 3/5 fault-injection bench under sanitizers =="
"$repo/build-asan/bench/bench_robustness_faults" > /dev/null
echo "bench_robustness_faults: clean under ASan/UBSan"

echo "== 4/5 engine + obs + serve + batch-kernel + arena tests under ThreadSanitizer =="
cmake -B "$repo/build-tsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=thread
cmake --build "$repo/build-tsan" -j "$jobs" \
      --target test_engine --target test_obs --target test_property \
      --target test_serve --target test_lp_arena --target bench_engine_scaling
"$repo/build-tsan/tests/test_engine"
"$repo/build-tsan/tests/test_obs"
"$repo/build-tsan/tests/test_property"
# The streaming service: producer threads against the bounded MPSC queues
# and the pooled pump path (thread-count invariance, crash recovery).
"$repo/build-tsan/tests/test_serve"
# The arena LP suite: includes the WorkspacePool partition test that runs
# concurrent solve_batch calls on distinct pool slots at 1/2/8 threads.
"$repo/build-tsan/tests/test_lp_arena"
# A small batch-kernel fleet run: exercises the StopBatch offline-total
# memo and the prewarm pass under real engine concurrency.
"$repo/build-tsan/bench/bench_engine_scaling" 20 5 > /dev/null
echo "test_engine + test_obs + test_property + test_serve + test_lp_arena + batch engine run: clean under TSan"

echo "== 5/5 static analysis: clang-tidy + idlered_lint + contracts =="
# tidy.sh skips gracefully (exit 0 with a warning) when no clang-tidy
# binary is installed; the custom linter and the contract-checked test run
# always execute. Step 1 configures with the default
# -DIDLERED_CONTRACT_MODE=throw, so re-running ctest here exercises every
# IDLERED_EXPECTS/ENSURES/ASSERT_INVARIANT in throwing mode.
"$repo/tools/tidy.sh" "$repo/build"
python3 "$repo/tools/idlered_lint.py" --self-test
python3 "$repo/tools/idlered_lint.py"
ctest --test-dir "$repo/build" -R "ContractMode|Contract" --output-on-failure
echo "static analysis: clean"

echo "All checks passed."
