#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite in a normal build, the whole
# suite plus the fault-injection bench under ASan/UBSan, and the parallel
# evaluation engine under ThreadSanitizer. Run from anywhere; builds land
# in <repo>/build, <repo>/build-asan, and <repo>/build-tsan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== 1/4 normal build + ctest =="
cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== 2/4 sanitized build + ctest (ASan + UBSan) =="
cmake -B "$repo/build-asan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=ON
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== 3/4 fault-injection bench under sanitizers =="
"$repo/build-asan/bench/bench_robustness_faults" > /dev/null
echo "bench_robustness_faults: clean under ASan/UBSan"

echo "== 4/4 engine tests under ThreadSanitizer =="
cmake -B "$repo/build-tsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=thread
cmake --build "$repo/build-tsan" -j "$jobs" --target test_engine
"$repo/build-tsan/tests/test_engine"
echo "test_engine: clean under TSan"

echo "All checks passed."
