#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite in a normal build, the whole
# suite plus the fault-injection bench under ASan/UBSan, the parallel
# evaluation engine under ThreadSanitizer, the replay-critical suites under
# standalone UBSan with every check fatal, and the static-analysis stack
# (clang-tidy when available, the custom idlered_lint rules, and the math
# contracts in throwing mode). Run from anywhere; builds land in
# <repo>/build, <repo>/build-asan, <repo>/build-tsan, and
# <repo>/build-ubsan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== 1/6 normal build + ctest =="
cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== 2/6 sanitized build + ctest (ASan + UBSan) =="
cmake -B "$repo/build-asan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=ON
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== 3/6 fault-injection bench under sanitizers =="
"$repo/build-asan/bench/bench_robustness_faults" > /dev/null
echo "bench_robustness_faults: clean under ASan/UBSan"

echo "== 4/6 engine + obs + serve + batch-kernel + arena tests under ThreadSanitizer =="
cmake -B "$repo/build-tsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=thread
cmake --build "$repo/build-tsan" -j "$jobs" \
      --target test_engine --target test_obs --target test_property \
      --target test_multislope --target test_serve --target test_lp_arena \
      --target bench_engine_scaling
"$repo/build-tsan/tests/test_engine"
"$repo/build-tsan/tests/test_obs"
"$repo/build-tsan/tests/test_property"
# The multislope battery: its engine wiring test runs wide-vs-1-thread
# EvalSessions over the MS strategy lineup under real pool concurrency.
"$repo/build-tsan/tests/test_multislope"
# The streaming service: producer threads against the bounded MPSC queues
# and the pooled pump path (thread-count invariance, crash recovery).
"$repo/build-tsan/tests/test_serve"
# The arena LP suite: includes the WorkspacePool partition test that runs
# concurrent solve_batch calls on distinct pool slots at 1/2/8 threads.
"$repo/build-tsan/tests/test_lp_arena"
# A small batch-kernel fleet run: exercises the StopBatch offline-total
# memo and the prewarm pass under real engine concurrency.
"$repo/build-tsan/bench/bench_engine_scaling" 20 5 > /dev/null
echo "test_engine + test_obs + test_property + test_multislope + test_serve + test_lp_arena + batch engine run: clean under TSan"

echo "== 5/6 replay-critical suites under standalone UBSan (every check fatal) =="
# Unlike step 2 (UBSan piggybacked on ASan, recoverable), this build makes
# every UBSan check fatal via -fno-sanitize-recover=all: one misaligned
# load, UB-tainted cast, or signed overflow anywhere in the WAL/FNV replay
# or LP arena path aborts the run. The suites chosen are the ones whose
# correctness the bit-identical replay guarantee leans on: the serve
# kill/recover sweep, the LP arena workspace tests, and the batch-kernel
# property harness.
cmake -B "$repo/build-ubsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=undefined
cmake --build "$repo/build-ubsan" -j "$jobs" \
      --target test_serve --target test_lp_arena --target test_property \
      --target test_multislope --target test_util
"$repo/build-ubsan/tests/test_serve"
"$repo/build-ubsan/tests/test_lp_arena"
"$repo/build-ubsan/tests/test_property"
# The multislope battery leans on exact FP identities (k=2 bit-identity,
# envelope decomposition) — any UB-tainted arithmetic in the new closed
# forms aborts here.
"$repo/build-ubsan/tests/test_multislope"
# test_util holds the util::bits suite: the endian-explicit load/store and
# bit_cast helpers the WAL checksum path now runs on.
"$repo/build-ubsan/tests/test_util"
echo "test_serve + test_lp_arena + test_property + test_multislope + test_util: clean under fatal UBSan"

echo "== 6/6 static analysis: clang-tidy + idlered_lint + contracts =="
# tidy.sh skips gracefully (exit 0 with a warning) when no clang-tidy
# binary is installed; the custom linter and the contract-checked test run
# always execute. Step 1 configures with the default
# -DIDLERED_CONTRACT_MODE=throw, so re-running ctest here exercises every
# IDLERED_EXPECTS/ENSURES/ASSERT_INVARIANT in throwing mode.
"$repo/tools/tidy.sh" "$repo/build"
python3 "$repo/tools/idlered_lint.py" --self-test
python3 "$repo/tools/idlered_lint.py"
ctest --test-dir "$repo/build" -R "ContractMode|Contract" --output-on-failure
echo "static analysis: clean"

echo "All checks passed."
