#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite in a normal build, then the
# whole suite plus the fault-injection bench under ASan/UBSan. Run from
# anywhere; builds land in <repo>/build and <repo>/build-asan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== 1/3 normal build + ctest =="
cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== 2/3 sanitized build + ctest (ASan + UBSan) =="
cmake -B "$repo/build-asan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_SANITIZERS=ON
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== 3/3 fault-injection bench under sanitizers =="
"$repo/build-asan/bench/bench_robustness_faults" > /dev/null
echo "bench_robustness_faults: clean under ASan/UBSan"

echo "All checks passed."
