#!/usr/bin/env python3
"""bench_diff: perf-regression gate over BENCH_<name>.json envelopes.

Compares a freshly produced schema-v2 bench envelope against a committed
baseline (bench/baselines/BENCH_<name>.json) and exits nonzero when a
gated metric regressed beyond tolerance. Metrics are auto-discovered from
the numeric leaves of the envelope's "results" payload and classified by
naming convention:

  throughput  *_per_sec, *_speedup*      regression = fresh below baseline
  latency     *_us                       regression = fresh above baseline
  budget      *alloc*, *failures*        regression = fresh above baseline
                                         (absolute, tolerance ignored:
                                         these are exact invariants)
  config      events, vehicles, cells,   must match exactly or the
              *_bound, schema_version    comparison is meaningless -> 2

Leaves that match nothing (wall-clock seconds, quantile bucket dumps, …)
are informational only: wall seconds re-gate what the rate metrics
already cover, and buckets are not scalars.

Usage:
  tools/bench_diff.py bench/baselines/BENCH_lp_arena.json BENCH_lp_arena.json
  tools/bench_diff.py BASE.json FRESH.json --tolerance 0.30
  tools/bench_diff.py BASE.json FRESH.json --list

Tolerance is relative (default 0.10 = 10%); CI passes a generous value
because shared runners are noisy, local runs can afford a tight one.
Exit codes: 0 ok, 1 regression, 2 usage/IO/config mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 2

CONFIG_KEYS = {"events", "vehicles", "cells", "schema_version"}


def flatten(obj, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested dict, keyed by /-joined paths."""
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            out.update(flatten(value, f"{prefix}/{key}" if prefix else key))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)
    return out


def classify(path: str) -> str:
    leaf = path.rsplit("/", 1)[-1]
    if leaf in CONFIG_KEYS or leaf.endswith("_bound"):
        return "config"
    if "/buckets/" in path:
        return "info"
    if leaf.endswith("_per_sec") or "speedup" in leaf:
        return "throughput"
    if leaf.endswith("_us"):
        return "latency"
    if "alloc" in leaf or leaf.endswith("failures"):
        return "budget"
    return "info"


def load_envelope(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: envelope is not a JSON object")
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"{path}: schema_version "
                         f"{payload.get('schema_version')!r} != "
                         f"{SCHEMA_VERSION}")
    if not isinstance(payload.get("bench"), str):
        raise ValueError(f"{path}: missing \"bench\" name")
    return payload


def fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="bench_diff.py",
                                     description=__doc__)
    parser.add_argument("baseline", help="committed baseline envelope")
    parser.add_argument("fresh", help="freshly produced envelope")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        metavar="FRAC",
                        help="relative regression tolerance (default 0.10)")
    parser.add_argument("--list", action="store_true",
                        help="list gated metrics and exit")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    try:
        base = load_envelope(args.baseline)
        fresh = load_envelope(args.fresh)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_diff: error: {e}", file=sys.stderr)
        return 2

    if base["bench"] != fresh["bench"]:
        print(f"bench_diff: error: bench name mismatch "
              f"({base['bench']!r} vs {fresh['bench']!r})", file=sys.stderr)
        return 2

    # The obs block is runtime telemetry (trace stats, metric snapshots),
    # not a bench result — never gate on it.
    base_leaves = flatten({k: v for k, v in base.items() if k != "obs"})
    fresh_leaves = flatten({k: v for k, v in fresh.items() if k != "obs"})

    if args.list:
        for path in sorted(base_leaves):
            kind = classify(path)
            if kind not in ("info",):
                print(f"{kind:>10}  {path}")
        return 0

    regressions: list[str] = []
    mismatches: list[str] = []
    rows: list[tuple[str, str, str, str, str, str]] = []
    for path in sorted(base_leaves):
        kind = classify(path)
        if kind == "info":
            continue
        if path not in fresh_leaves:
            regressions.append(f"{path}: present in baseline, missing in "
                               f"fresh run")
            continue
        b, f = base_leaves[path], fresh_leaves[path]
        if kind == "config":
            if b != f:
                mismatches.append(f"{path}: baseline {fmt(b)} != fresh "
                                  f"{fmt(f)}")
            continue
        if kind == "budget":
            ok = f <= b
            delta = f"{f - b:+g}"
        elif kind == "throughput":
            ok = f >= b * (1.0 - args.tolerance)
            delta = f"{(f - b) / b:+.1%}" if b else "n/a"
        else:  # latency
            ok = f <= b * (1.0 + args.tolerance)
            delta = f"{(f - b) / b:+.1%}" if b else "n/a"
        verdict = "ok" if ok else "REGRESSED"
        rows.append((kind, path, fmt(b), fmt(f), delta, verdict))
        if not ok:
            regressions.append(f"{path}: baseline {fmt(b)} -> fresh "
                               f"{fmt(f)} ({delta}, {kind}, tolerance "
                               f"{args.tolerance:.0%})")

    new_gates = [p for p in sorted(fresh_leaves)
                 if p not in base_leaves and classify(p) not in
                 ("info", "config")]

    print(f"bench_diff: {base['bench']} — {args.baseline} vs {args.fresh} "
          f"(tolerance {args.tolerance:.0%})")
    if rows:
        widths = [max(len(r[c]) for r in rows) for c in range(6)]
        for r in rows:
            print("  " + "  ".join(
                r[c].ljust(widths[c]) if c in (0, 1) else r[c].rjust(widths[c])
                for c in range(6)))
    if new_gates:
        print("  note: fresh-only metrics (no baseline yet): "
              + ", ".join(new_gates))

    if mismatches:
        print("bench_diff: config mismatch — baseline and fresh runs are "
              "not comparable:", file=sys.stderr)
        for m in mismatches:
            print(f"  {m}", file=sys.stderr)
        return 2
    if regressions:
        print(f"bench_diff: {len(regressions)} regression(s):",
              file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"bench_diff: ok ({len(rows)} gated metric(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
