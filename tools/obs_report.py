#!/usr/bin/env python3
"""obs_report: render and validate idlered observability artifacts.

Consumes the two artifacts the obs layer produces:

  TRACE_<name>.jsonl    JSON-lines event trace (obs::Recorder) — one object
                        per line, each carrying "type" and a clock stamp "t"
  BENCH_<name>.json     schema-versioned bench envelope (bench::BenchRun)
                        whose "obs" block holds the metrics snapshot and
                        span aggregates

and renders a text summary: top spans by self-time, the engine decision mix
(which LP vertex COA picked, worst-case vs realized CR), the controller's
fallback-ladder timeline, fault and health-transition summaries, and the
metrics snapshot.

Usage:
  tools/obs_report.py TRACE_fig5_sweep_b28.jsonl
  tools/obs_report.py TRACE.jsonl --metrics BENCH_fig5_sweep_b28.json
  tools/obs_report.py --validate TRACE.jsonl [--metrics BENCH.json]
  tools/obs_report.py TRACE.jsonl --trace-tree 9f3c2a7e4b1d8e05
  tools/obs_report.py TRACE.jsonl --chains [--min-complete 0.99]

--validate checks structure instead of rendering: every line must parse as
a JSON object with a known "type", the required fields per type, and a
numeric timestamp; the metrics file must carry schema_version 2 and an
"obs" block. Exit codes: 0 ok, 1 validation failure, 2 usage/IO error.

--trace-tree renders one decision's parent-linked dspan timeline (the
ingest -> [wal] -> solve -> decision chain for a 16-hex trace id, as
emitted by the serve path when tracing is on).

--chains audits end-to-end completeness: every non-replay decision dspan
must have an ingest root, a solve span when the outcome is "decided", and
a wal span when the shard was durable and the event was admitted. Exits 1
when the complete fraction drops below --min-complete (default 0.99).
"""

from __future__ import annotations

import argparse
import collections
import json
import sys

SCHEMA_VERSION = 2

# Required fields per event type (value = type or tuple of accepted types).
# None in a tuple admits JSON null (e.g. the threshold of a policy that
# never shuts the engine off, serialized from +inf/NaN).
NUMERIC = (int, float)
EVENT_FIELDS = {
    "meta": {"bench": str, "schema_version": int},
    "span": {"name": str, "thread": NUMERIC, "t0": NUMERIC, "dur": NUMERIC,
             "self": NUMERIC},
    "stop_eval": {"policy": str, "index": NUMERIC, "y": NUMERIC,
                  "threshold": NUMERIC + (type(None),),
                  "online": NUMERIC, "offline": NUMERIC},
    # "decision" has two shapes: the engine's per-cell COA vertex selection
    # (keyed by "vertex") and the controller's per-stop record (keyed by
    # "mode"); shared requirement is just the type tag and timestamp.
    "decision": {},
    "rung": {"stop": NUMERIC, "from": str, "to": str, "health": str,
             "soc": NUMERIC},
    "health_transition": {"kind": str, "at": NUMERIC, "from": str,
                          "to": str, "rate": NUMERIC},
    "fault": {"stop": NUMERIC, "kind": str, "dropped": bool,
              "restart_attempts": NUMERIC, "delay_s": NUMERIC},
    # Streaming service (src/serve/): one "shed" per load-shedder ceiling
    # change, one "serve_drain" per shard pump (sampled depth, events
    # popped, and the fallback-ladder ceiling in force).
    "shed": {"pump": NUMERIC, "from": str, "to": str, "depth": NUMERIC},
    "serve_drain": {"shard": NUMERIC, "pump": NUMERIC, "depth": NUMERIC,
                    "popped": NUMERIC, "ceiling": str},
    # Decision-scoped span: one per pipeline stage of one streamed stop
    # event, keyed by a 16-hex trace id derived from (seed, vehicle, seq).
    # Stages: ingest (root) -> [wal] -> solve -> decision; non-root stages
    # carry "parent". Replayed (WAL-recovered) stages carry replay=true.
    "dspan": {"trace": str, "stage": str, "thread": NUMERIC,
              "t0": NUMERIC, "dur": NUMERIC},
}

DSPAN_STAGES = {"ingest", "wal", "solve", "decision"}

ENGINE_DECISION_FIELDS = {"vertex": str, "strategy": str, "vehicle": str,
                          "wc_cr": NUMERIC, "realized_cr": NUMERIC}
CONTROLLER_DECISION_FIELDS = {"mode": str, "policy": str,
                              "threshold": NUMERIC + (type(None),),
                              "cost": NUMERIC, "offline": NUMERIC,
                              "soc": NUMERIC}


def check_fields(ev: dict, fields: dict, where: str) -> list[str]:
    errors = []
    for key, typ in fields.items():
        if key not in ev:
            errors.append(f"{where}: missing field {key!r}")
        elif not isinstance(ev[key], typ):
            errors.append(f"{where}: field {key!r} has type "
                          f"{type(ev[key]).__name__}")
    return errors


def load_trace(path: str) -> tuple[list[dict], list[str]]:
    """Parse a JSONL trace; returns (events, errors)."""
    events, errors = [], []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: not valid JSON ({e.msg})")
                continue
            if not isinstance(ev, dict):
                errors.append(f"{where}: event is not a JSON object")
                continue
            etype = ev.get("type")
            if not isinstance(etype, str):
                errors.append(f"{where}: missing/invalid \"type\"")
                continue
            if etype not in EVENT_FIELDS:
                errors.append(f"{where}: unknown event type {etype!r}")
                continue
            if not isinstance(ev.get("t"), NUMERIC):
                errors.append(f"{where}: missing/invalid timestamp \"t\"")
            errors.extend(check_fields(ev, EVENT_FIELDS[etype], where))
            if etype == "dspan":
                stage = ev.get("stage")
                if stage not in DSPAN_STAGES:
                    errors.append(f"{where}: dspan stage {stage!r} not in "
                                  f"{sorted(DSPAN_STAGES)}")
                trace = ev.get("trace")
                if isinstance(trace, str) and not (
                        len(trace) == 16
                        and all(c in "0123456789abcdef" for c in trace)):
                    errors.append(f"{where}: dspan trace {trace!r} is not "
                                  f"a 16-digit lowercase hex id")
            if etype == "decision":
                if "vertex" in ev:
                    errors.extend(check_fields(
                        ev, ENGINE_DECISION_FIELDS, where))
                elif "mode" in ev:
                    errors.extend(check_fields(
                        ev, CONTROLLER_DECISION_FIELDS, where))
                else:
                    errors.append(f"{where}: decision event has neither "
                                  f"\"vertex\" (engine) nor \"mode\" "
                                  f"(controller)")
            events.append(ev)
    return events, errors


def load_metrics(path: str) -> tuple[dict, list[str]]:
    """Parse a BENCH_<name>.json envelope; returns (payload, errors)."""
    errors = []
    with open(path, encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as e:
            return {}, [f"{path}: not valid JSON ({e.msg})"]
    if not isinstance(payload, dict):
        return {}, [f"{path}: envelope is not a JSON object"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"{path}: schema_version "
                      f"{payload.get('schema_version')!r} != "
                      f"{SCHEMA_VERSION}")
    if not isinstance(payload.get("bench"), str):
        errors.append(f"{path}: missing/invalid \"bench\"")
    obs = payload.get("obs")
    if not isinstance(obs, dict):
        errors.append(f"{path}: missing \"obs\" block")
    elif not isinstance(obs.get("metrics"), dict):
        errors.append(f"{path}: obs block lacks a \"metrics\" snapshot")
    else:
        for section in ("counters", "gauges", "histograms",
                        "log_histograms"):
            if not isinstance(obs["metrics"].get(section), dict):
                errors.append(f"{path}: metrics snapshot lacks the "
                              f"\"{section}\" section")
        for name, h in obs["metrics"].get("log_histograms", {}).items():
            if not isinstance(h, dict):
                errors.append(f"{path}: log histogram {name!r} is not an "
                              f"object")
                continue
            for key in ("count", "sum", "rel_error",
                        "p50", "p90", "p99", "p999"):
                if not isinstance(h.get(key), NUMERIC):
                    errors.append(f"{path}: log histogram {name!r} lacks "
                                  f"numeric {key!r}")
    return payload, errors


def fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.1f} us"


def render_table(rows: list[list[str]], indent: str = "  ") -> str:
    if not rows:
        return ""
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    lines = []
    for r in rows:
        cells = [r[c].ljust(widths[c]) if c == 0 else r[c].rjust(widths[c])
                 for c in range(len(r))]
        lines.append(indent + "  ".join(cells).rstrip())
    return "\n".join(lines)


def render_spans(events: list[dict], limit: int = 12) -> str:
    agg: dict[str, list[float]] = collections.defaultdict(
        lambda: [0, 0.0, 0.0])  # count, total, self
    for ev in events:
        if ev["type"] != "span":
            continue
        a = agg[ev["name"]]
        a[0] += 1
        a[1] += ev["dur"]
        a[2] += ev["self"]
    if not agg:
        return "spans: none recorded\n"
    rows = [["span", "count", "total", "self", "avg self"]]
    ranked = sorted(agg.items(), key=lambda kv: kv[1][2], reverse=True)
    for name, (count, total, self_t) in ranked[:limit]:
        rows.append([name, str(count), fmt_seconds(total),
                     fmt_seconds(self_t), fmt_seconds(self_t / count)])
    out = f"top spans by self time ({len(agg)} distinct):\n"
    out += render_table(rows) + "\n"
    if len(ranked) > limit:
        out += f"  ... {len(ranked) - limit} more span name(s) elided\n"
    return out


def render_decision_mix(events: list[dict]) -> str:
    engine = [e for e in events if e["type"] == "decision" and "vertex" in e]
    ctrl = [e for e in events if e["type"] == "decision" and "mode" in e]
    out = ""
    if engine:
        mix: dict[str, list[float]] = collections.defaultdict(
            lambda: [0, 0.0, 0.0])  # count, sum wc_cr, sum realized
        for e in engine:
            m = mix[e["vertex"]]
            m[0] += 1
            m[1] += e["wc_cr"]
            m[2] += e["realized_cr"]
        rows = [["vertex", "cells", "share", "mean wc CR",
                 "mean realized CR"]]
        for vertex, (n, wc, real) in sorted(mix.items(),
                                            key=lambda kv: -kv[1][0]):
            rows.append([vertex, str(n), f"{n / len(engine):.1%}",
                         f"{wc / n:.4f}", f"{real / n:.4f}"])
        out += (f"engine decision mix ({len(engine)} COA cells):\n"
                + render_table(rows) + "\n")
    if ctrl:
        mix2: dict[str, int] = collections.Counter(
            e["mode"] for e in ctrl)
        rows = [["mode", "stops", "share"]]
        for mode, n in mix2.most_common():
            rows.append([mode, str(n), f"{n / len(ctrl):.1%}"])
        out += (f"controller decision mix ({len(ctrl)} stops):\n"
                + render_table(rows) + "\n")
    if not out:
        return "decisions: none recorded\n"
    return out


def render_fallback_timeline(events: list[dict], limit: int = 40) -> str:
    rungs = [e for e in events if e["type"] == "rung"]
    faults = [e for e in events if e["type"] == "fault"]
    health = [e for e in events if e["type"] == "health_transition"]
    out = ""
    if rungs:
        out += f"fallback timeline ({len(rungs)} rung transitions):\n"
        for e in rungs[:limit]:
            out += (f"  stop {int(e['stop'])}: {e['from']} -> {e['to']}"
                    f"  (health={e['health']}, soc={e['soc']:.2f})\n")
        if len(rungs) > limit:
            out += f"  ... {len(rungs) - limit} more transition(s) elided\n"
    if health:
        kinds = collections.Counter(
            (e["kind"], e["from"], e["to"]) for e in health)
        out += f"health transitions ({len(health)}):\n"
        for (kind, frm, to), n in kinds.most_common():
            out += f"  {kind}: {frm} -> {to}  x{n}\n"
    if faults:
        kinds = collections.Counter(e["kind"] for e in faults)
        dropped = sum(1 for e in faults if e["dropped"])
        out += (f"faults ({len(faults)} events, {dropped} dropped "
                f"readings):\n")
        for kind, n in kinds.most_common():
            out += f"  {kind}: {n}\n"
    if not out:
        return "fallback/faults: no events recorded\n"
    return out


def group_dspans(events: list[dict]) -> dict[str, list[dict]]:
    chains: dict[str, list[dict]] = collections.defaultdict(list)
    for ev in events:
        if ev["type"] == "dspan":
            chains[ev["trace"]].append(ev)
    return chains


def chain_missing(spans: list[dict], decision: dict) -> list[str]:
    """Stages a non-replay decision's chain is missing, per the serve
    pipeline's emission contract (src/serve/shard.cpp):

      ingest    always (the root span, emitted on queue admission)
      solve     iff the outcome is "decided" (only priced events solve)
      wal       iff the shard was durable and the event was not predicted
                stale (the barrier appends exactly the non-stale events)
    """
    stages = {s["stage"] for s in spans if not s.get("replay")}
    missing = []
    if "ingest" not in stages:
        missing.append("ingest")
    if decision.get("outcome") == "decided" and "solve" not in stages:
        missing.append("solve")
    if (decision.get("durable")
            and decision.get("outcome") != "rejected-stale"
            and "wal" not in stages):
        missing.append("wal")
    return missing


def render_trace_tree(events: list[dict], trace_id: str) -> tuple[str, int]:
    """Render one decision's parent-linked timeline; (text, exit code)."""
    spans = group_dspans(events).get(trace_id, [])
    if not spans:
        return (f"trace {trace_id}: no dspan events "
                f"(is this a --trace run of the serve path?)\n", 1)
    order = {"ingest": 0, "wal": 1, "solve": 2, "decision": 3}
    spans.sort(key=lambda s: (order.get(s["stage"], 9), s["t0"]))
    t_base = min(s["t0"] for s in spans)
    by_stage = {s["stage"]: s for s in spans}
    out = f"trace {trace_id}:\n"
    for s in spans:
        depth = 0
        parent = s.get("parent")
        seen = set()
        while parent and parent in by_stage and parent not in seen:
            seen.add(parent)
            depth += 1
            parent = by_stage[parent].get("parent")
        extra = [f"{k}={s[k]}" for k in
                 ("shard", "vehicle", "seq", "rung", "outcome", "durable")
                 if k in s]
        if s.get("replay"):
            extra.append("replay")
        out += (f"  {'  ' * depth}{s['stage']:<8} "
                f"+{(s['t0'] - t_base) * 1e6:9.1f} us  "
                f"dur {s['dur'] * 1e6:9.1f} us  thread {int(s['thread'])}"
                + (f"  ({', '.join(extra)})" if extra else "") + "\n")
    decision = by_stage.get("decision")
    if decision is not None and not decision.get("replay"):
        missing = chain_missing(spans, decision)
        if missing:
            out += f"  INCOMPLETE: missing stage(s) {', '.join(missing)}\n"
            return out, 1
        out += "  chain complete\n"
    return out, 0


def render_chains(events: list[dict], min_complete: float) -> tuple[str, int]:
    """Audit ingest->WAL chain completeness; (text, exit code)."""
    chains = group_dspans(events)
    total = complete = 0
    examples: list[str] = []
    stage_counts: collections.Counter = collections.Counter(
        s["stage"] for spans in chains.values() for s in spans)
    for trace, spans in chains.items():
        decision = next((s for s in spans if s["stage"] == "decision"
                         and not s.get("replay")), None)
        if decision is None:
            continue  # replay-only or ingest-only trace: not auditable
        total += 1
        missing = chain_missing(spans, decision)
        if not missing:
            complete += 1
        elif len(examples) < 5:
            examples.append(f"  {trace}: missing {', '.join(missing)} "
                            f"(outcome={decision.get('outcome')})")
    breakdown = ", ".join(f"{k}={n}" for k, n in stage_counts.most_common())
    out = f"dspan stages: {breakdown or 'none'}\n"
    if total == 0:
        out += ("decision chains: no non-replay decision dspans found "
                "(was the serve path traced?)\n")
        return out, 1
    frac = complete / total
    out += (f"decision chains: {complete}/{total} complete "
            f"({frac:.2%}, floor {min_complete:.2%})\n")
    if examples:
        out += "incomplete examples:\n" + "\n".join(examples) + "\n"
    return out, 0 if frac >= min_complete else 1


def render_log_histograms(metrics: dict) -> str:
    log_hists = metrics.get("log_histograms", {})
    if not log_hists:
        return ""
    rows = [["log histogram", "count", "p50", "p90", "p99", "p99.9",
             "max", "rel err"]]
    for name in sorted(log_hists):
        h = log_hists[name]
        # Timer histograms (".seconds") render human units; anything else
        # (e.g. stops-per-call) is a bare number.
        fmt = (fmt_seconds if name.endswith(".seconds")
               else lambda v: f"{v:.4g}")
        rows.append([
            name, str(h.get("count")),
            fmt(h.get("p50", 0.0)), fmt(h.get("p90", 0.0)),
            fmt(h.get("p99", 0.0)), fmt(h.get("p999", 0.0)),
            fmt(h.get("max", 0.0)),
            f"{h.get('rel_error', 0.0):.0%}"])
    return ("latency quantiles (log-bucketed, bounded relative error):\n"
            + render_table(rows) + "\n")


def render_metrics(payload: dict) -> str:
    obs = payload.get("obs", {})
    metrics = obs.get("metrics", {})
    out = f"metrics snapshot (bench {payload.get('bench', '?')!r}):\n"
    counters = metrics.get("counters", {})
    if counters:
        rows = [["counter", "value"]]
        for name in sorted(counters):
            rows.append([name, str(counters[name])])
        out += render_table(rows) + "\n"
    gauges = metrics.get("gauges", {})
    if gauges:
        rows = [["gauge", "value"]]
        for name in sorted(gauges):
            rows.append([name, str(gauges[name])])
        out += render_table(rows) + "\n"
    for name, h in sorted(metrics.get("histograms", {}).items()):
        out += (f"  histogram {name}: total={h.get('total')} "
                f"sum={h.get('sum')}\n")
        edges = h.get("edges", [])
        counts = h.get("counts", [])
        labels = []
        for i, count in enumerate(counts):
            if i == 0:
                labels.append(f"<{edges[0]}" if edges else "all")
            elif i < len(edges):
                labels.append(f"[{edges[i - 1]}, {edges[i]})")
            else:
                labels.append(f">={edges[-1]}")
            out += f"    {labels[-1]}: {count}\n"
    out += render_log_histograms(metrics)
    if (not counters and not gauges and not metrics.get("histograms")
            and not metrics.get("log_histograms")):
        out += "  (empty — run with --trace to enable collection)\n"
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="obs_report.py",
                                     description=__doc__)
    parser.add_argument("trace", nargs="?",
                        help="TRACE_<name>.jsonl event trace")
    parser.add_argument("--metrics", metavar="BENCH_JSON",
                        help="BENCH_<name>.json envelope to summarize")
    parser.add_argument("--validate", action="store_true",
                        help="validate structure instead of rendering")
    parser.add_argument("--trace-tree", metavar="TRACE_ID",
                        help="render one decision's dspan timeline "
                             "(16-hex trace id)")
    parser.add_argument("--chains", action="store_true",
                        help="audit ingest->WAL dspan chain completeness")
    parser.add_argument("--min-complete", type=float, default=0.99,
                        metavar="FRAC",
                        help="--chains failure floor (default 0.99)")
    args = parser.parse_args(argv)

    if not args.trace and not args.metrics:
        parser.error("nothing to do: give a trace file and/or --metrics")
    if (args.trace_tree or args.chains) and not args.trace:
        parser.error("--trace-tree/--chains need a trace file")

    events: list[dict] = []
    payload: dict = {}
    errors: list[str] = []
    try:
        if args.trace:
            events, errs = load_trace(args.trace)
            errors.extend(errs)
        if args.metrics:
            payload, errs = load_metrics(args.metrics)
            errors.extend(errs)
    except OSError as e:
        print(f"obs_report: error: {e}", file=sys.stderr)
        return 2

    if args.validate:
        for err in errors:
            print(err)
        if errors:
            print(f"obs_report: {len(errors)} validation error(s)")
            return 1
        parts = []
        if args.trace:
            parts.append(f"{len(events)} events in {args.trace}")
        if args.metrics:
            parts.append(f"envelope {args.metrics}")
        print(f"obs_report: valid ({', '.join(parts)})")
        return 0

    if errors:
        for err in errors:
            print(f"warning: {err}", file=sys.stderr)

    if args.trace_tree:
        text, code = render_trace_tree(events, args.trace_tree)
        print(text, end="")
        return code
    if args.chains:
        text, code = render_chains(events, args.min_complete)
        print(text, end="")
        return code

    if events:
        meta = next((e for e in events if e["type"] == "meta"), {})
        counts = collections.Counter(e["type"] for e in events)
        breakdown = ", ".join(f"{k}={n}" for k, n in counts.most_common())
        print(f"=== obs report: {meta.get('bench', args.trace)} ===")
        print(f"events: {len(events)} ({breakdown})\n")
        print(render_spans(events))
        print(render_decision_mix(events))
        print(render_fallback_timeline(events))
        if any(e["type"] == "dspan" for e in events):
            print(render_chains(events, 0.0)[0])
    if payload:
        print(render_metrics(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
