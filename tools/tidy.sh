#!/usr/bin/env bash
# clang-tidy driver: runs the checked-in .clang-tidy config over every src/
# translation unit in compile_commands.json.
#
#   tools/tidy.sh [build-dir]     default build dir: <repo>/build
#
# Exit codes: 0 clean (or clang-tidy absent — prints a warning and skips so
# container images without LLVM can still run tools/check.sh end to end),
# 1 findings, 2 usage/setup error.
set -uo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || echo 4)"

tidy_bin=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    tidy_bin="$cand"
    break
  fi
done

if [[ -z "$tidy_bin" ]]; then
  echo "tidy.sh: WARNING: no clang-tidy binary found on PATH; skipping" >&2
  echo "tidy.sh: install clang-tidy (>= 14) to enable this gate" >&2
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "tidy.sh: $build_dir/compile_commands.json not found;" >&2
  echo "tidy.sh: configure first: cmake -B $build_dir -S $repo" >&2
  exit 2
fi

# Only first-party translation units; the config's HeaderFilterRegex keeps
# header diagnostics scoped to src/ as well.
mapfile -t sources < <(cd "$repo" && ls src/*/*.cpp)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "tidy.sh: no sources found under src/" >&2
  exit 2
fi

echo "tidy.sh: $tidy_bin over ${#sources[@]} files ($jobs jobs)"
status=0
printf '%s\n' "${sources[@]}" \
  | (cd "$repo" && xargs -P "$jobs" -n 4 \
      "$tidy_bin" -p "$build_dir" --quiet) || status=1

if [[ $status -eq 0 ]]; then
  echo "tidy.sh: clean"
else
  echo "tidy.sh: findings above must be fixed or NOLINT'd with a" >&2
  echo "tidy.sh: justification comment (see CONTRIBUTING.md)" >&2
fi
exit $status
