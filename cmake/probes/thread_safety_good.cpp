// Positive probe for ENABLE_THREAD_SAFETY_ANALYSIS: a correctly annotated
// counter that must COMPILE under -Werror=thread-safety. If it does not,
// the toolchain's capability analysis is broken and configuration aborts.
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void bump() IDLERED_EXCLUDES(m_) {
    idlered::util::LockGuard lock(m_);
    ++value_;
  }

  int get() IDLERED_EXCLUDES(m_) {
    idlered::util::LockGuard lock(m_);
    return value_;
  }

 private:
  idlered::util::Mutex m_;
  int value_ IDLERED_GUARDED_BY(m_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.get() == 1 ? 0 : 1;
}
