// Negative probe for ENABLE_THREAD_SAFETY_ANALYSIS: touches a guarded
// member without holding its mutex. It must FAIL to compile under
// -Werror=thread-safety; if it compiles, the analysis is silently inert
// (wrong compiler, attribute not supported) and configuration aborts
// rather than green-lighting an unanalyzed build.
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // Deliberate bug: no LockGuard around the guarded write.
  int bump_unlocked() { return ++value_; }

 private:
  idlered::util::Mutex m_;
  int value_ IDLERED_GUARDED_BY(m_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.bump_unlocked();
}
